//===- telemetry/Telemetry.cpp - Pipeline instrumentation ------------------===//

#include "telemetry/Telemetry.h"

#include "support/BuildInfo.h"
#include "telemetry/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace spike;
using namespace spike::telemetry;

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

uint32_t Session::beginSpan(std::string_view Name) {
  SpanEvent Event;
  Event.Name = std::string(Name);
  Event.Parent = OpenStack.empty() ? -1 : int32_t(OpenStack.back());
  Event.StartNs = nowNs();
  uint32_t Id = uint32_t(Spans.size());
  Spans.push_back(std::move(Event));
  OpenStack.push_back(Id);
  return Id;
}

void Session::endSpan(uint32_t Id) {
  assert(Id < Spans.size() && "ending unknown span");
  uint64_t Now = nowNs();
  // Close any span opened after Id that was leaked open (an early return
  // that skipped a nested endSpan); RAII Spans never trigger this.
  while (!OpenStack.empty()) {
    uint32_t Top = OpenStack.back();
    OpenStack.pop_back();
    SpanEvent &Event = Spans[Top];
    if (Event.Open) {
      Event.DurNs = Now - Event.StartNs;
      Event.Open = false;
    }
    if (Top == Id)
      return;
  }
}

std::string Session::spanPath(uint32_t Id) const {
  const SpanEvent &Event = Spans[Id];
  if (Event.Parent < 0)
    return Event.Name;
  return spanPath(uint32_t(Event.Parent)) + "/" + Event.Name;
}

std::vector<PhaseRow> Session::phaseRows() const {
  std::map<std::string, PhaseRow> ByPath;
  for (uint32_t Id = 0; Id < Spans.size(); ++Id) {
    const SpanEvent &Event = Spans[Id];
    if (Event.Open)
      continue;
    std::string Path = spanPath(Id);
    PhaseRow &Row = ByPath[Path];
    Row.Path = Path;
    Row.Seconds += double(Event.DurNs) * 1e-9;
    Row.Count += 1;
  }
  std::vector<PhaseRow> Rows;
  Rows.reserve(ByPath.size());
  for (auto &[Path, Row] : ByPath)
    Rows.push_back(std::move(Row));
  return Rows;
}

//===----------------------------------------------------------------------===//
// Active-session plumbing
//===----------------------------------------------------------------------===//

namespace {
Session *ActiveSession = nullptr;
} // namespace

Session *spike::telemetry::active() { return ActiveSession; }

SessionScope::SessionScope(Session &S) : Previous(ActiveSession) {
  ActiveSession = &S;
}

SessionScope::~SessionScope() { ActiveSession = Previous; }

SessionPause::SessionPause() : Previous(ActiveSession) {
  ActiveSession = nullptr;
}

SessionPause::~SessionPause() { ActiveSession = Previous; }

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// All JSON writers share the parser's escaper so routine names with
/// quotes, backslashes, or control characters round-trip exactly.
std::string escape(const std::string &S) { return jsonEscape(S); }

std::string formatDouble(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.6f", Value);
  return Buffer;
}

} // namespace

std::string spike::telemetry::traceJson(const Session &S) {
  std::string Out;
  Out += "{\"displayTimeUnit\": \"ms\",\n";
  Out += " \"otherData\": {\"tool\": \"" + escape(S.tool()) + "\"},\n";
  Out += " \"traceEvents\": [";
  bool First = true;
  for (uint32_t Id = 0; Id < S.spans().size(); ++Id) {
    const SpanEvent &Event = S.spans()[Id];
    if (Event.Open)
      continue;
    if (!First)
      Out += ",";
    First = false;
    // Complete ("X") events with microsecond timestamps, one synthetic
    // pid/tid: chrome://tracing and Perfetto reconstruct nesting from
    // ts/dur overlap.
    Out += "\n  {\"name\": \"" + escape(Event.Name) +
           "\", \"cat\": \"spike\", \"ph\": \"X\", \"pid\": 1, "
           "\"tid\": 1, \"ts\": " +
           formatDouble(double(Event.StartNs) * 1e-3) +
           ", \"dur\": " + formatDouble(double(Event.DurNs) * 1e-3) + "}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string spike::telemetry::runReportJson(const Session &S) {
  std::string Out;
  Out += "{\n";
  Out += "  \"schema\": \"spike-run-report\",\n";
  Out += "  \"version\": 1,\n";
  Out += "  \"tool\": \"" + escape(S.tool()) + "\",\n";
  // Build provenance is additive (still version 1): pre-provenance
  // readers ignore the member, and it ties the report to the binary
  // that wrote it (diffing an ASan run against a release baseline is
  // the classic false regression this flags).
  Out += "  \"build\": " + buildInfoJson(&jsonQuote) + ",\n";
  Out += "  \"total_seconds\": " + formatDouble(S.elapsedSeconds()) + ",\n";

  Out += "  \"phases\": [";
  std::vector<PhaseRow> Rows = S.phaseRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    Out += I == 0 ? "\n" : ",\n";
    Out += "    {\"path\": \"" + escape(Rows[I].Path) +
           "\", \"seconds\": " + formatDouble(Rows[I].Seconds) +
           ", \"count\": " + std::to_string(Rows[I].Count) + "}";
  }
  Out += Rows.empty() ? "],\n" : "\n  ],\n";

  auto RenderRegistry = [&](const Session::Registry &Registry) {
    bool First = true;
    for (const auto &[Name, Value] : Registry) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += "    \"" + escape(Name) + "\": " + std::to_string(Value);
    }
    Out += First ? "}" : "\n  }";
  };
  Out += "  \"counters\": {";
  RenderRegistry(S.counters());
  Out += ",\n  \"gauges\": {";
  RenderRegistry(S.gauges());

  // Histograms are additive (still version 1): the member is omitted
  // when nothing recorded one, and pre-profiling readers ignore it.
  // Buckets render sparsely, keyed by bucket index.
  if (!S.histograms().empty()) {
    Out += ",\n  \"histograms\": {";
    bool FirstH = true;
    for (const auto &[Name, H] : S.histograms()) {
      Out += FirstH ? "\n" : ",\n";
      FirstH = false;
      Out += "    \"" + escape(Name) + "\": {\"count\": " +
             std::to_string(H.count()) + ", \"sum\": " +
             std::to_string(H.sum()) + ", \"min\": " +
             std::to_string(H.min()) + ", \"max\": " +
             std::to_string(H.max()) + ", \"buckets\": {";
      bool FirstB = true;
      for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
        if (H.bucket(I) == 0)
          continue;
        if (!FirstB)
          Out += ", ";
        FirstB = false;
        Out += "\"" + std::to_string(I) + "\": " + std::to_string(H.bucket(I));
      }
      Out += "}}";
    }
    Out += "\n  }";
  }

  // Hot-spot attribution rows are additive the same way.
  if (!S.hotspots().empty()) {
    Out += ",\n  \"hotspots\": [";
    const std::vector<HotSpotRecord> &Records = S.hotspots();
    for (size_t I = 0; I < Records.size(); ++I) {
      const HotSpotRecord &R = Records[I];
      Out += I == 0 ? "\n" : ",\n";
      Out += "    {\"phase\": \"" + escape(R.Phase) + "\"";
      if (!R.Routine.empty())
        Out += ", \"routine\": \"" + escape(R.Routine) + "\"";
      if (R.Scc >= 0)
        Out += ", \"scc\": " + std::to_string(R.Scc);
      Out += ", \"pops\": " + std::to_string(R.Pops) +
             ", \"iters\": " + std::to_string(R.Iters) +
             ", \"set_ops\": " + std::to_string(R.SetOps) +
             ", \"ns\": " + std::to_string(R.Ns) + "}";
    }
    Out += "\n  ]";
  }

  // Attribution records are additive: readers of version 1 that predate
  // them simply ignore the member, and it is omitted entirely when no
  // pass recorded one.
  if (!S.transforms().empty()) {
    Out += ",\n  \"transforms\": [";
    const std::vector<TransformRecord> &Records = S.transforms();
    for (size_t I = 0; I < Records.size(); ++I) {
      const TransformRecord &R = Records[I];
      Out += I == 0 ? "\n" : ",\n";
      Out += "    {\"pass\": \"" + escape(R.Pass) + "\", \"outcome\": \"" +
             escape(R.Outcome) + "\"";
      if (R.Address >= 0)
        Out += ", \"address\": " + std::to_string(R.Address);
      if (!R.Routine.empty())
        Out += ", \"routine\": \"" + escape(R.Routine) + "\"";
      Out += ", \"detail\": \"" + escape(R.Detail) + "\"}";
    }
    Out += "\n  ]";
  }

  // Degradation records are additive the same way: present only when
  // the resource governor degraded something.
  if (!S.degrades().empty()) {
    Out += ",\n  \"degraded\": [";
    const std::vector<DegradeRecord> &Records = S.degrades();
    for (size_t I = 0; I < Records.size(); ++I) {
      const DegradeRecord &R = Records[I];
      Out += I == 0 ? "\n" : ",\n";
      Out += "    {\"routine\": \"" + escape(R.Routine) +
             "\", \"reason\": \"" + escape(R.Reason) + "\"";
      if (!R.Phase.empty())
        Out += ", \"phase\": \"" + escape(R.Phase) + "\"";
      Out += "}";
    }
    Out += "\n  ]";
  }
  Out += "\n}\n";
  return Out;
}

namespace {

/// One frame name of a folded stack: ';' delimits frames and the final
/// space delimits the value, so both are rewritten.
std::string foldedFrame(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out) {
    if (C == ';')
      C = ':';
    else if (C == ' ' || C == '\n' || C == '\t' || C == '\r')
      C = '_';
  }
  return Out;
}

} // namespace

std::string
spike::telemetry::foldedStacks(const std::string &Tool,
                               const std::vector<PhaseRow> &Rows,
                               const std::vector<HotSpotRecord> &HotSpots) {
  // Total nanoseconds per span path, then self = total - children.
  std::map<std::string, uint64_t> Total;
  for (const PhaseRow &Row : Rows)
    Total[Row.Path] += uint64_t(Row.Seconds * 1e9 + 0.5);

  std::map<std::string, uint64_t> Self = Total;
  for (const auto &[Path, Ns] : Total) {
    size_t Slash = Path.rfind('/');
    if (Slash == std::string::npos)
      continue;
    auto Parent = Self.find(Path.substr(0, Slash));
    if (Parent == Self.end())
      continue;
    Parent->second -= Parent->second < Ns ? Parent->second : Ns;
  }

  // Routine-level hot-spot rows become leaf frames under their phase,
  // carved out of the phase's self time so the document still sums to
  // the measured wall clock.  Group-level rows are skipped: their time
  // is exactly the sum of their routine rows and would double-count.
  std::map<std::pair<std::string, std::string>, uint64_t> Leaves;
  for (const HotSpotRecord &R : HotSpots) {
    if (R.Routine.empty() || R.Ns == 0)
      continue;
    Leaves[{R.Phase, R.Routine}] += R.Ns;
    auto Phase = Self.find(R.Phase);
    if (Phase != Self.end())
      Phase->second -= Phase->second < R.Ns ? Phase->second : R.Ns;
  }

  std::string ToolFrame = foldedFrame(Tool);
  std::map<std::string, uint64_t> Lines;
  auto StackOf = [&](const std::string &Path) {
    std::string Stack = ToolFrame;
    if (Path.empty())
      return Stack;
    size_t Begin = 0;
    while (Begin <= Path.size()) {
      size_t End = Path.find('/', Begin);
      if (End == std::string::npos)
        End = Path.size();
      Stack += ";" + foldedFrame(Path.substr(Begin, End - Begin));
      Begin = End + 1;
    }
    return Stack;
  };
  for (const auto &[Path, Ns] : Self)
    if (Ns > 0)
      Lines[StackOf(Path)] += Ns;
  for (const auto &[Key, Ns] : Leaves)
    Lines[StackOf(Key.first) + ";" + foldedFrame(Key.second)] += Ns;

  std::string Out;
  for (const auto &[Stack, Ns] : Lines)
    Out += Stack + " " + std::to_string(Ns) + "\n";
  return Out;
}

std::string spike::telemetry::foldedStacks(const Session &S) {
  return foldedStacks(S.tool(), S.phaseRows(), S.hotspots());
}

bool spike::telemetry::writeTextFile(const std::string &Path,
                                     const std::string &Contents) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), File);
  bool Ok = Written == Contents.size();
  Ok = std::fclose(File) == 0 && Ok;
  return Ok;
}
