//===- telemetry/Histogram.h - Log2-bucketed value histogram --*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, log2-bucketed histogram of uint64 samples — the metric
/// type behind the profiling layer's per-routine solve times, worklist
/// pops per SCC group, and convergence traces.
///
/// Design constraints, in order:
///
///   - **No allocation, ever.**  The bucket array is a std::array, so a
///     Histogram can live in solver scratch structures that run under
///     the disabled-telemetry no-allocation guarantee, and inside
///     support-layer types (ThreadPool) that do not link the telemetry
///     library.
///
///   - **Deterministic.**  Bucketing is a pure function of the sample
///     value; merge() is elementwise addition, so merging per-group
///     histograms in group-id order after parallel joins yields
///     bit-identical buckets at every --jobs (the same contract
///     SolverStats already obeys).
///
///   - **Fixed size.**  Bucket 0 holds the value 0; bucket i (1..63)
///     holds values in [2^(i-1), 2^i); the top bucket absorbs the
///     overflow.  64 buckets cover the full uint64 range, so there is no
///     configuration to disagree about between writer and reader.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TELEMETRY_HISTOGRAM_H
#define SPIKE_TELEMETRY_HISTOGRAM_H

#include <array>
#include <cstdint>

namespace spike {
namespace telemetry {

/// Fixed-size log2 histogram of uint64 samples.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  /// The bucket a sample lands in: 0 for the value 0, otherwise
  /// floor(log2(Value)) + 1, clamped to the top bucket.
  static constexpr unsigned bucketFor(uint64_t Value) {
    if (Value == 0)
      return 0;
    unsigned Bucket = 64 - unsigned(__builtin_clzll(Value));
    return Bucket < NumBuckets ? Bucket : NumBuckets - 1;
  }

  /// Inclusive lower bound of \p Bucket (0, 1, 2, 4, 8, ...).
  static constexpr uint64_t bucketLo(unsigned Bucket) {
    return Bucket == 0 ? 0 : uint64_t(1) << (Bucket - 1);
  }

  /// Inclusive upper bound of \p Bucket (0, 1, 3, 7, 15, ...).
  static constexpr uint64_t bucketHi(unsigned Bucket) {
    if (Bucket == 0)
      return 0;
    if (Bucket >= NumBuckets - 1)
      return ~uint64_t(0);
    return (uint64_t(1) << Bucket) - 1;
  }

  /// Adds one sample.
  void record(uint64_t Value) {
    ++BucketCounts[bucketFor(Value)];
    ++Samples;
    Total += Value;
    if (Value < MinV)
      MinV = Value;
    if (Value > MaxV)
      MaxV = Value;
  }

  /// Elementwise addition of \p Other into this histogram.
  void merge(const Histogram &Other) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      BucketCounts[I] += Other.BucketCounts[I];
    Samples += Other.Samples;
    Total += Other.Total;
    if (Other.MinV < MinV)
      MinV = Other.MinV;
    if (Other.MaxV > MaxV)
      MaxV = Other.MaxV;
  }

  bool empty() const { return Samples == 0; }
  uint64_t count() const { return Samples; }
  uint64_t sum() const { return Total; }
  uint64_t min() const { return Samples == 0 ? 0 : MinV; }
  uint64_t max() const { return MaxV; }
  uint64_t bucket(unsigned I) const { return BucketCounts[I]; }

  /// Mean sample value, rounded down; 0 when empty.
  uint64_t mean() const { return Samples == 0 ? 0 : Total / Samples; }

  /// Upper bound of the bucket holding the \p P-th percentile sample
  /// (P in [0, 100]); 0 when empty.  Bucket-granular by construction:
  /// good to a factor of two, which is what a log2 histogram promises.
  uint64_t percentile(double P) const {
    if (Samples == 0)
      return 0;
    if (P < 0)
      P = 0;
    if (P > 100)
      P = 100;
    // The rank of the percentile sample, 1-based (nearest-rank method).
    uint64_t Rank = uint64_t(P / 100.0 * double(Samples - 1)) + 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += BucketCounts[I];
      if (Seen >= Rank) {
        uint64_t Hi = bucketHi(I);
        return Hi < MaxV ? Hi : MaxV;
      }
    }
    return MaxV;
  }

  bool operator==(const Histogram &Other) const {
    return Samples == Other.Samples && Total == Other.Total &&
           min() == Other.min() && MaxV == Other.MaxV &&
           BucketCounts == Other.BucketCounts;
  }

private:
  std::array<uint64_t, NumBuckets> BucketCounts{};
  uint64_t Samples = 0;
  uint64_t Total = 0;
  uint64_t MinV = ~uint64_t(0);
  uint64_t MaxV = 0;
};

} // namespace telemetry
} // namespace spike

#endif // SPIKE_TELEMETRY_HISTOGRAM_H
