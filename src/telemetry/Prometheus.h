//===- telemetry/Prometheus.h - Text-exposition rendering -----*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text-exposition (version 0.0.4) rendering and parsing —
/// the scrape format behind spike-serve's `metrics` protocol command
/// and the spike-top live tables.
///
/// Naming convention (DESIGN.md §16): every exported metric is prefixed
/// `spike_`, and registry names are sanitized by mapping every character
/// outside `[a-zA-Z0-9_:]` to `_` ("serve.latency.patch-routine" becomes
/// `spike_serve_latency_patch_routine`).  Hostile strings — routine
/// names with quotes, backslashes, newlines — never become metric
/// names; they travel as *label values*, where the exposition format
/// has an escape syntax (`\\`, `\"`, `\n`).
///
/// Histograms render the conventional cumulative `_bucket{le="..."}`
/// series (upper bounds are the log2 bucket bounds of
/// telemetry::Histogram, zero-count buckets elided) plus `_sum` and
/// `_count`.
///
/// The parser accepts the full sample grammar (names, labels with
/// escapes, float/±Inf/NaN values, optional timestamps, HELP/TYPE
/// comments) and is strict about it — it is both the round-trip test
/// for the writer and the CI exposition checker (`spike-top
/// --validate`).  Everything here is deterministic: rendering the same
/// session twice yields byte-identical documents.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TELEMETRY_PROMETHEUS_H
#define SPIKE_TELEMETRY_PROMETHEUS_H

#include "telemetry/Histogram.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spike {
namespace telemetry {

/// Sanitizes \p Raw into a legal metric name: characters outside
/// [a-zA-Z0-9_:] map to '_', and a leading digit gets a '_' prefix.
std::string promName(std::string_view Raw);

/// Escapes \p Raw for use inside a double-quoted label value
/// (backslash, double quote, and newline get backslash escapes).
std::string promLabelValue(std::string_view Raw);

/// One label set: (name, value) pairs, values unescaped.
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Builds one exposition document.  Metric names passed in must already
/// be legal (callers sanitize registry names with promName); a `# TYPE`
/// line is emitted the first time each family is touched.
class PromWriter {
public:
  void counter(const std::string &Name, uint64_t Value);
  void gauge(const std::string &Name, uint64_t Value);
  void histogram(const std::string &Name, const Histogram &H);

  /// The `<name>{labels} 1` info-metric convention (spike_build_info).
  void info(const std::string &Name, const PromLabels &Labels);

  /// One labeled sample of gauge family \p Name — how per-routine
  /// hot-spot aggregations export without hostile names leaking into
  /// metric names.
  void labeled(const std::string &Name, const PromLabels &Labels,
               uint64_t Value);

  const std::string &str() const { return Out; }

private:
  void typeLine(const std::string &Name, const char *Type);

  std::string Out;
  std::set<std::string> Typed;
};

/// One parsed sample line.
struct PromSample {
  std::string Name;
  PromLabels Labels; ///< Values unescaped.
  double Value = 0;

  /// The value of label \p Name, or "" if absent.
  std::string label(std::string_view LabelName) const {
    for (const auto &[N, V] : Labels)
      if (N == LabelName)
        return V;
    return std::string();
  }
};

/// Parses an exposition document into its samples; nullopt (with a
/// line-numbered message in \p Error) on any syntax violation.
std::optional<std::vector<PromSample>>
parseExposition(std::string_view Text, std::string *Error = nullptr);

/// Renders \p S's counters, gauges, histograms, and a per-routine
/// aggregation of its hot-spot rows (spike_hot_routine_ns /
/// spike_hot_routine_pops, routine as a label) into \p W, every metric
/// prefixed "spike_".  Registry names starting with \p SkipPrefix are
/// omitted — spike-serve exports its own authoritative serve_* family
/// from ServeStats and must not collide with mirrored session counters.
void renderSessionProm(PromWriter &W, const Session &S,
                       std::string_view SkipPrefix = {});

} // namespace telemetry
} // namespace spike

#endif // SPIKE_TELEMETRY_PROMETHEUS_H
