//===- telemetry/Profiling.cpp - Solver cost attribution -------------------===//

#include "telemetry/Profiling.h"

#include "telemetry/Telemetry.h"

#include <string>

using namespace spike;
using namespace spike::telemetry;

void spike::telemetry::emitGroupCosts(
    std::string_view Prefix, const std::vector<GroupCost> &Costs,
    const std::function<const std::vector<uint32_t> &(size_t Group)>
        &MembersOf,
    const std::function<std::string_view(uint32_t Routine)> &NameOf,
    const uint64_t *RoutinePops) {
  Session *S = active();
  if (!S)
    return;

  std::string P(Prefix);
  std::string Path = S->currentPath();
  Histogram GroupPops, GroupIters, GroupSetOps, GroupNs, RoutineNs;
  Histogram ChangedBits;

  for (size_t Group = 0; Group < Costs.size(); ++Group) {
    const std::vector<uint32_t> &Members = MembersOf(Group);
    if (Members.empty())
      continue;
    const GroupCost &Cost = Costs[Group];

    GroupPops.record(Cost.Pops);
    GroupIters.record(Cost.Iters);
    GroupSetOps.record(Cost.SetOps);
    GroupNs.record(Cost.Ns);
    ChangedBits.merge(Cost.ChangedBits);

    HotSpotRecord Row;
    Row.Phase = Path;
    Row.Scc = int64_t(Group);
    Row.Pops = Cost.Pops;
    Row.Iters = Cost.Iters;
    Row.SetOps = Cost.SetOps;
    Row.Ns = Cost.Ns;
    S->addHotSpot(std::move(Row));

    if (!RoutinePops)
      continue;
    for (uint32_t Routine : Members) {
      uint64_t Pops = RoutinePops[Routine];
      // Pro-rata time split: pops are the one per-routine signal the
      // group worklist exposes, and they track evaluation cost well
      // enough to aim a refactor with.  Integer division, so routine
      // rows sum to their group's Ns within rounding.
      uint64_t Ns = Cost.Pops == 0 ? 0 : Cost.Ns * Pops / Cost.Pops;
      RoutineNs.record(Ns);

      HotSpotRecord RRow;
      RRow.Phase = Path;
      RRow.Routine = std::string(NameOf(Routine));
      RRow.Scc = int64_t(Group);
      RRow.Pops = Pops;
      RRow.Ns = Ns;
      S->addHotSpot(std::move(RRow));
    }
  }

  S->mergeHistogram(P + ".group_pops", GroupPops);
  S->mergeHistogram(P + ".group_iters", GroupIters);
  S->mergeHistogram(P + ".group_set_ops", GroupSetOps);
  S->mergeHistogram(P + ".changed_bits", ChangedBits);
  S->mergeHistogram(P + ".group_ns", GroupNs);
  if (RoutinePops)
    S->mergeHistogram(P + ".routine_ns", RoutineNs);
}
