//===- telemetry/Profiling.h - Solver cost attribution --------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-SCC-group cost accumulator every solver layer fills inside
/// its parallel tasks, and the one merge routine that turns a vector of
/// them into session histograms and hot-spot rows.
///
/// The discipline mirrors SolverStats: a GroupCost is written by exactly
/// one task (the group's own solve), never touches the telemetry session
/// from inside a task, and is merged serially after the joins in
/// group-id order — so every emitted value except the measured wall
/// times is bit-identical at every --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TELEMETRY_PROFILING_H
#define SPIKE_TELEMETRY_PROFILING_H

#include "telemetry/Histogram.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace spike {
namespace telemetry {

/// Profiling accumulator of one SCC group (or one routine-granular work
/// item), filled inside the group's own task.
struct GroupCost {
  uint64_t Pops = 0;   ///< Worklist pops across the group's passes.
  uint64_t Iters = 0;  ///< Fixpoint sweeps (max pops of any single node).
  uint64_t SetOps = 0; ///< RegSet/SlotSet operations (edge visits).
  uint64_t Ns = 0;     ///< Wall time inside the group's solves.
  Histogram ChangedBits; ///< Set-growth bits per changing pop.

  /// Shared routine-indexed pop array, disjointly written because the
  /// condensation partitions routines across groups.  Null when the
  /// caller attributes at group granularity only.
  uint64_t *RoutinePops = nullptr;
};

/// A steady-clock stamp for GroupCost::Ns accounting; callers take one
/// before and one after a group solve, gated on telemetry::profiling().
inline uint64_t costClockNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Merges per-group costs into the active session (no-op when none):
/// under the innermost open span's path P and name prefix \p Prefix,
/// emits
///
///   - histograms "<Prefix>.group_pops", ".group_iters",
///     ".group_set_ops" (one sample per nonempty group — deterministic),
///     ".changed_bits" (the convergence trace — deterministic),
///     ".group_ns" and ".routine_ns" (schedule-dependent, hence the
///     "_ns" suffix the determinism scrubbers key on);
///   - one group-level HotSpotRecord per nonempty group (Phase = P);
///   - when \p RoutinePops is non-null, one routine-level HotSpotRecord
///     per member routine, its Ns the group's Ns split pro-rata by pops
///     (so routine rows sum to their group within integer rounding).
///
/// \p MembersOf yields a group's member routine indices; \p NameOf a
/// routine's name.  Both are only called here, serially.
void emitGroupCosts(
    std::string_view Prefix, const std::vector<GroupCost> &Costs,
    const std::function<const std::vector<uint32_t> &(size_t Group)>
        &MembersOf,
    const std::function<std::string_view(uint32_t Routine)> &NameOf,
    const uint64_t *RoutinePops);

} // namespace telemetry
} // namespace spike

#endif // SPIKE_TELEMETRY_PROFILING_H
