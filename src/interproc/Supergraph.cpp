//===- interproc/Supergraph.cpp - Whole-program CFG baseline -------------===//

#include "interproc/Supergraph.h"

#include "telemetry/Telemetry.h"

#include "dataflow/CallPolicy.h"
#include "dataflow/Worklist.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace spike;

Supergraph spike::buildSupergraph(const Program &Prog) {
  telemetry::Span BuildSpan("interproc.supergraph");
  Supergraph Graph;
  Graph.BlockBase.resize(Prog.Routines.size());
  uint32_t Next = 0;
  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    Graph.BlockBase[RoutineIndex] = Next;
    Next += uint32_t(Prog.Routines[RoutineIndex].Blocks.size());
  }

  bool NeedHubs = false;
  for (const Routine &R : Prog.Routines) {
    for (uint32_t Block : R.CallBlocks)
      if (R.Blocks[Block].Term == TerminatorKind::IndirectCall)
        NeedHubs = true;
    if (R.AddressTaken)
      NeedHubs = true;
  }
  if (NeedHubs) {
    Graph.HubCall = Next++;
    Graph.HubReturn = Next++;
  }
  Graph.NumNodes = Next;

  std::vector<std::pair<uint32_t, uint32_t>> Arcs;
  auto AddArc = [&](uint32_t From, uint32_t To) {
    Arcs.push_back({From, To});
  };

  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    const Routine &R = Prog.Routines[RoutineIndex];
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      const BasicBlock &Block = R.Blocks[BlockIndex];
      uint32_t From = Graph.nodeOf(RoutineIndex, BlockIndex);

      if (!Block.endsWithCall()) {
        for (uint32_t Succ : Block.Succs) {
          AddArc(From, Graph.nodeOf(RoutineIndex, Succ));
          ++Graph.NumIntraArcs;
        }
        continue;
      }

      // Call block: the fall-through arc is replaced by a call arc into
      // the callee and return arcs from the callee's exits.
      if (Block.Term == TerminatorKind::Call) {
        const Routine &Callee = Prog.Routines[Block.CalleeRoutine];
        uint32_t EntryBlock =
            Callee.EntryBlocks[uint32_t(Block.CalleeEntry)];
        AddArc(From, Graph.nodeOf(Block.CalleeRoutine, EntryBlock));
        ++Graph.NumCallArcs;
        for (uint32_t Succ : Block.Succs)
          for (uint32_t ExitBlock : Callee.ExitBlocks) {
            AddArc(Graph.nodeOf(Block.CalleeRoutine, ExitBlock),
                   Graph.nodeOf(RoutineIndex, Succ));
            ++Graph.NumReturnArcs;
          }
      } else {
        assert(Graph.HubCall >= 0 && "indirect call without hubs");
        AddArc(From, uint32_t(Graph.HubCall));
        ++Graph.NumCallArcs;
        for (uint32_t Succ : Block.Succs) {
          AddArc(uint32_t(Graph.HubReturn),
                 Graph.nodeOf(RoutineIndex, Succ));
          ++Graph.NumReturnArcs;
          // Bypass arc: the calling standard guarantees nothing about
          // what an unknown callee defines, so liveness after the call
          // must be able to survive it unchanged (Section 3.5
          // conservatism; matches the PSG's assumption-based summary).
          AddArc(From, Graph.nodeOf(RoutineIndex, Succ));
          ++Graph.NumReturnArcs;
        }
      }
    }

    if (R.AddressTaken) {
      uint32_t EntryBlock = R.EntryBlocks.empty() ? 0 : R.EntryBlocks[0];
      AddArc(uint32_t(Graph.HubCall),
             Graph.nodeOf(RoutineIndex, EntryBlock));
      ++Graph.NumCallArcs;
      for (uint32_t ExitBlock : R.ExitBlocks) {
        AddArc(Graph.nodeOf(RoutineIndex, ExitBlock),
               uint32_t(Graph.HubReturn));
        ++Graph.NumReturnArcs;
      }
    }
  }

  // Deduplicate and CSR-pack both directions.
  std::sort(Arcs.begin(), Arcs.end());
  Arcs.erase(std::unique(Arcs.begin(), Arcs.end()), Arcs.end());

  Graph.SuccBegin.assign(Graph.NumNodes + 1, 0);
  for (const auto &[From, To] : Arcs)
    ++Graph.SuccBegin[From + 1];
  for (size_t I = 1; I < Graph.SuccBegin.size(); ++I)
    Graph.SuccBegin[I] += Graph.SuccBegin[I - 1];
  Graph.SuccIds.resize(Arcs.size());
  {
    std::vector<uint32_t> Cursor(Graph.SuccBegin.begin(),
                                 Graph.SuccBegin.end() - 1);
    for (const auto &[From, To] : Arcs)
      Graph.SuccIds[Cursor[From]++] = To;
  }

  Graph.PredBegin.assign(Graph.NumNodes + 1, 0);
  for (const auto &[From, To] : Arcs)
    ++Graph.PredBegin[To + 1];
  for (size_t I = 1; I < Graph.PredBegin.size(); ++I)
    Graph.PredBegin[I] += Graph.PredBegin[I - 1];
  Graph.PredIds.resize(Arcs.size());
  {
    std::vector<uint32_t> Cursor(Graph.PredBegin.begin(),
                                 Graph.PredBegin.end() - 1);
    for (const auto &[From, To] : Arcs)
      Graph.PredIds[Cursor[To]++] = From;
  }

  if (telemetry::active()) {
    telemetry::count("interproc.supergraph.nodes", Graph.NumNodes);
    telemetry::count("interproc.supergraph.arcs", Graph.numArcs());
  }
  return Graph;
}

SupergraphLiveness
spike::solveSupergraphLiveness(const Program &Prog,
                               const Supergraph &Graph) {
  SupergraphLiveness Result;
  Result.LiveIn.assign(Graph.NumNodes, RegSet());
  Result.LiveOut.assign(Graph.NumNodes, RegSet());

  RegSet RaOnly;
  RaOnly.insert(Prog.Conv.RaReg);
  RegSet UnknownCallerLive = Prog.Conv.unknownCallerLiveAtExit();

  // Precompute per-node block metadata; hubs are identity nodes.
  struct NodeMeta {
    RegSet Def;
    RegSet Ubd;
    RegSet Boundary;   ///< Added to live-out unconditionally.
    RegSet CallUses;   ///< Assumed consumed by the call terminator.
    bool IsCall = false;
  };
  std::vector<NodeMeta> Meta(Graph.NumNodes);
  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    const Routine &R = Prog.Routines[RoutineIndex];
    bool SeedExits =
        int32_t(RoutineIndex) == Prog.EntryRoutine || R.AddressTaken;
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      const BasicBlock &Block = R.Blocks[BlockIndex];
      NodeMeta &M = Meta[Graph.nodeOf(RoutineIndex, BlockIndex)];
      M.Def = Block.Def;
      M.Ubd = Block.Ubd;
      M.IsCall = Block.endsWithCall();
      if (Block.Term == TerminatorKind::UnresolvedJump)
        M.Boundary = Prog.jumpTargetLive(Block.End - 1);
      else if (Block.Term == TerminatorKind::Return && SeedExits)
        M.Boundary = UnknownCallerLive;
      // Indirect calls obey the calling standard (Section 3.5): assume
      // the argument-passing registers are consumed even if the actual
      // address-taken targets (also wired through the hubs) read fewer.
      if (Block.Term == TerminatorKind::IndirectCall)
        M.CallUses = indirectCallLabel(Prog, Block).MayUse;
    }
  }

  Worklist List(Graph.NumNodes);
  List.pushAll();
  while (!List.empty()) {
    uint32_t NodeId = List.pop();
    const NodeMeta &M = Meta[NodeId];

    RegSet LiveOut = M.Boundary;
    for (uint32_t I = Graph.SuccBegin[NodeId],
                  E = Graph.SuccBegin[NodeId + 1];
         I != E; ++I)
      LiveOut |= Result.LiveIn[Graph.SuccIds[I]];

    // A call block's terminator defines ra before entering the callee
    // and (for indirect calls) consumes the calling standard's assumed
    // argument registers.
    RegSet AfterBody =
        M.IsCall ? (LiveOut - RaOnly) | M.CallUses : LiveOut;
    RegSet LiveIn = M.Ubd | (AfterBody - M.Def);

    if (LiveOut == Result.LiveOut[NodeId] &&
        LiveIn == Result.LiveIn[NodeId])
      continue;
    Result.LiveOut[NodeId] = LiveOut;
    Result.LiveIn[NodeId] = LiveIn;
    for (uint32_t I = Graph.PredBegin[NodeId],
                  E = Graph.PredBegin[NodeId + 1];
         I != E; ++I)
      List.push(Graph.PredIds[I]);
  }

  return Result;
}
