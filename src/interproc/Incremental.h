//===- interproc/Incremental.h - Incremental re-analysis ------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental interprocedural re-analysis after a routine patch.
///
/// A resident service (spike-serve) holds a converged AnalysisResult and
/// receives a new image version that differs from the analyzed one in a
/// few routines' code.  Re-solving from scratch repeats work for every
/// routine the patch cannot have affected; reanalyzeIncremental instead
/// rebuilds the cheap structures (CFG, PSG — both already parallel and a
/// small fraction of total time), diffs the routine records to find the
/// *structurally dirty* set, and re-runs the two PSG phases with the
/// solver's PhaseReuse protocol (psg/PsgSolver.h): SCC groups outside the
/// dirty frontier restore their cached converged sets, labels, and
/// provenance slots; groups on the frontier iterate exactly as a fresh
/// solve would and extend the frontier to dependents whose inputs
/// actually changed (phase 1 toward callers, phase 2 toward callees).
/// The stack-slot dataflow re-solves the same way (slice/SlotFlow.h).
///
/// The contract — enforced by the differential oracle tests — is strict
/// bit-identity: the resulting summaries, PSG sets, provenance store,
/// and slot facts equal a from-scratch solve of the new image at every
/// job count.  When the identity cannot be guaranteed cheaply (routine
/// partition changed, phase 2's dirty closure reaches the indirect-call
/// accumulator), the engine falls back to a full solve and says so in
/// the outcome instead of risking a stale fact.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_INTERPROC_INCREMENTAL_H
#define SPIKE_INTERPROC_INCREMENTAL_H

#include "psg/Analyzer.h"
#include "slice/SlotFlow.h"

namespace spike {

/// What one incremental re-analysis did — the dirty-frontier accounting
/// a serving layer reports per patch (`stats` command, serve.* run-report
/// counters).
struct IncrementalOutcome {
  /// The engine fell back to a full from-scratch solve (routine
  /// partition changed, or the resident result lacks the provenance
  /// store the options ask for).  The result is still correct.
  bool Full = false;

  /// Phase 2's dirty closure reached an address-taken or
  /// indirect-calling routine, so phase 2 re-solved every routine
  /// (phase 1 reuse still applied).
  bool Phase2Escalated = false;

  /// The slot engine fell back to a full solve (global sp-escape in
  /// either version collapses every fact to top anyway).
  bool SlotFull = false;

  /// Routines whose code / CFG record / annotation slices changed.
  uint64_t StructDirty = 0;

  /// Routines re-solved (not restored) by each register phase.
  uint64_t Phase1Dirty = 0;
  uint64_t Phase2Dirty = 0;

  /// Routines re-solved by each slot phase (0 when Slots is null).
  uint64_t SlotPhase1Dirty = 0;
  uint64_t SlotPhase2Dirty = 0;
};

/// Re-analyzes \p NewImg against the resident converged result \p A of a
/// previous image version, replacing \p A (and, when non-null, the
/// resident slot facts \p Slots) with state bit-identical to a fresh
/// analyzeImage / solveSlotFlow of \p NewImg under the same options.
/// \p Opts must request the same provenance mode the resident result was
/// produced with; a mismatch falls back to a full solve.  On a
/// BudgetBlownError (governed runs) \p A and \p Slots are untouched —
/// the caller keeps serving the old version and may retry degraded.
IncrementalOutcome reanalyzeIncremental(const Image &NewImg,
                                        const CallingConv &Conv,
                                        const AnalysisOptions &Opts,
                                        AnalysisResult &A,
                                        SlotFlowResult *Slots = nullptr);

} // namespace spike

#endif // SPIKE_INTERPROC_INCREMENTAL_H
