//===- interproc/CfgTwoPhase.cpp - CFG-level reference analysis ----------===//

#include "interproc/CfgTwoPhase.h"

#include "telemetry/Profiling.h"
#include "telemetry/Telemetry.h"

#include "cfg/SccSchedule.h"
#include "dataflow/CallPolicy.h"
#include "dataflow/FlowSets.h"
#include "dataflow/Liveness.h"
#include "dataflow/Worklist.h"
#include "psg/PsgSolver.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace spike;

namespace {

/// Shared state of the reference analysis.
///
/// Like the PSG solvers, both phases are scheduled over the call graph's
/// SCC condensation: each component runs the serial routine-level
/// worklist, components of one condensation level run concurrently on
/// the optional pool, and a component only ever reads values its
/// predecessor components already converged — so the fixpoint is
/// identical for every job count.
class TwoPhaseEngine {
public:
  TwoPhaseEngine(const Program &Prog,
                 const std::vector<RegSet> &SavedPerRoutine, ThreadPool *Pool,
                 const ResourceGovernor *Gov)
      : Prog(Prog), Saved(SavedPerRoutine), Pool(Pool), Gov(Gov) {
    RaOnly.insert(Prog.Conv.RaReg);
    AllRegs = RegSet::allBelow(NumIntRegs);
    EntrySets.resize(Prog.Routines.size());
    LiveAtExit.assign(Prog.Routines.size(), RegSet());
    LiveAtEntry.resize(Prog.Routines.size());
    ReturnLive.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      // Entry MUST-DEF starts at top, like every must-problem variable.
      EntrySets[RoutineIndex].assign(
          Prog.Routines[RoutineIndex].numEntries(),
          FlowSets{RegSet(), RegSet(), AllRegs});
      LiveAtEntry[RoutineIndex].resize(
          Prog.Routines[RoutineIndex].numEntries());
      ReturnLive[RoutineIndex].assign(
          Prog.Routines[RoutineIndex].CallBlocks.size(), RegSet());
    }
    buildCallers();
    Graph = buildCallGraph(Prog);
  }

  void run() {
    runPhase1();
    runPhase2();
  }

  InterprocSummaries takeResults() {
    InterprocSummaries Result;
    Result.Routines.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      const Routine &R = Prog.Routines[RoutineIndex];
      RoutineResults &Out = Result.Routines[RoutineIndex];
      for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
           ++EntryIndex) {
        FlowSets Filtered = filterCalleeSaved(
            EntrySets[RoutineIndex][EntryIndex], Saved[RoutineIndex]);
        // Cap call-defined by call-killed, as extractSummaries does.
        Out.EntrySummaries.push_back({Filtered.MayUse,
                                      Filtered.MustDef & Filtered.MayDef,
                                      Filtered.MayDef});
        Out.LiveAtEntry.push_back(LiveAtEntry[RoutineIndex][EntryIndex]);
      }
      // Any exit can return to any caller, so all exits of a routine
      // share one live-at-exit value.
      Out.LiveAtExit.assign(R.ExitBlocks.size(),
                            LiveAtExit[RoutineIndex]);
    }
    return Result;
  }

private:
  void buildCallers() {
    Callers.resize(Prog.Routines.size());
    CallerSites.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      const Routine &R = Prog.Routines[RoutineIndex];
      for (uint32_t CallIndex = 0; CallIndex < R.CallBlocks.size();
           ++CallIndex) {
        const BasicBlock &BlockRef = R.Blocks[R.CallBlocks[CallIndex]];
        if (BlockRef.Term == TerminatorKind::Call) {
          Callers[BlockRef.CalleeRoutine].push_back(RoutineIndex);
          CallerSites[BlockRef.CalleeRoutine].push_back(
              {RoutineIndex, CallIndex});
        }
      }
    }
  }

  /// The phase-1 call-return summary of the call ending \p Block, with
  /// the Section 3.4 filter and the caller-side ra fold applied.
  FlowSets crLabel(const BasicBlock &Block) const {
    FlowSets Label;
    if (Block.Term == TerminatorKind::Call) {
      FlowSets Filtered = filterCalleeSaved(
          EntrySets[Block.CalleeRoutine][uint32_t(Block.CalleeEntry)],
          Saved[Block.CalleeRoutine]);
      Label.MayUse = Filtered.MayUse - RaOnly;
      Label.MayDef = Filtered.MayDef | RaOnly;
      Label.MustDef = Filtered.MustDef | RaOnly;
    } else {
      Label = indirectCallLabel(Prog, Block);
    }
    return Label;
  }

  /// Solves the intra-routine three-set problem for routine
  /// \p RoutineIndex with the current callee summaries; returns the IN
  /// value of every block.  \p SetOps, when non-null, accumulates the
  /// block evaluations of the inner worklist.
  std::vector<FlowSets> solveRoutineSets(uint32_t RoutineIndex,
                                         uint64_t *SetOps) const {
    const Routine &R = Prog.Routines[RoutineIndex];
    // MUST-DEF starts at top (must problem, greatest fixpoint); the MAY
    // sets start at bottom — matching the PSG solvers.
    std::vector<FlowSets> In(R.Blocks.size(),
                             FlowSets{RegSet(), RegSet(), AllRegs});
    Worklist List(static_cast<uint32_t>(R.Blocks.size()));
    List.pushAll();
    while (!List.empty()) {
      uint32_t BlockIndex = List.pop();
      if (SetOps)
        ++*SetOps;
      const BasicBlock &Block = R.Blocks[BlockIndex];
      FlowSets Out;
      switch (Block.Term) {
      case TerminatorKind::Return:
        Out = FlowSets::atExit();
        break;
      case TerminatorKind::UnresolvedJump:
        Out = unknownJumpBoundary(Prog, Block);
        break;
      case TerminatorKind::Halt:
        Out = FlowSets::afterHalt(AllRegs);
        break;
      default: {
        bool First = true;
        for (uint32_t Succ : Block.Succs) {
          Out = First ? In[Succ] : Out.meet(In[Succ]);
          First = false;
        }
        if (First)
          Out = FlowSets::afterHalt(AllRegs); // Dead end: no paths.
        break;
      }
      }
      if (Block.endsWithCall())
        Out = Out.throughSummary(crLabel(Block));
      FlowSets NewIn = Out.transferThrough(Block.Def, Block.Ubd);
      if (NewIn == In[BlockIndex])
        continue;
      In[BlockIndex] = NewIn;
      for (uint32_t Pred : Block.Preds)
        List.push(Pred);
    }
    return In;
  }

  /// Returns the local worklist index of \p RoutineIndex within the
  /// ascending member list, or -1 when it belongs to another component.
  static int32_t localOf(const std::vector<uint32_t> &Members,
                         uint32_t RoutineIndex) {
    auto It = std::lower_bound(Members.begin(), Members.end(), RoutineIndex);
    if (It == Members.end() || *It != RoutineIndex)
      return -1;
    return int32_t(It - Members.begin());
  }

  /// Throws the budget-blown error for one component, naming its member
  /// routines so the governed driver can degrade exactly that group.
  [[noreturn]] void throwBlown(BudgetVerdict Verdict, const char *Phase,
                               const std::vector<uint32_t> &Members) const {
    std::vector<std::string> Names;
    Names.reserve(Members.size());
    for (uint32_t R : Members)
      Names.push_back(Prog.Routines[R].Name);
    throw BudgetBlownError(Verdict, Phase, std::move(Names));
  }

  /// Bits flipped between \p OldSet and \p NewSet — the convergence
  /// trace's unit of set growth (symmetric difference, so a greatest-
  /// fixpoint shrink counts the same as a least-fixpoint grow).
  static uint64_t changedBits(RegSet OldSet, RegSet NewSet) {
    return (NewSet - OldSet).count() + (OldSet - NewSet).count();
  }

  /// Solves one component's phase-1 pass: callee summaries outside the
  /// component have converged in earlier levels, so only in-component
  /// callers requeue.  \p Prof, when non-null, accumulates the group's
  /// cost (same discipline as the PSG solvers: one writer per group).
  void solveGroupPhase1(const std::vector<uint32_t> &Members, bool MayUsePass,
                        telemetry::GroupCost *Prof) {
    Worklist List(Members.size());
    List.pushAll();
    uint64_t Pops = 0;
    std::vector<uint32_t> LocalPops(Prof ? Members.size() : 0, 0);
    while (!List.empty()) {
      if (Gov) {
        BudgetVerdict V = Gov->poll(++Pops);
        if (V != BudgetVerdict::Ok)
          throwBlown(V, "cfg-two-phase.phase1", Members);
      }
      uint32_t Local = List.pop();
      uint32_t RoutineIndex = Members[Local];
      const Routine &R = Prog.Routines[RoutineIndex];
      if (Prof) {
        ++Prof->Pops;
        ++Prof->RoutinePops[RoutineIndex];
        ++LocalPops[Local];
      }
      std::vector<FlowSets> In =
          solveRoutineSets(RoutineIndex, Prof ? &Prof->SetOps : nullptr);
      bool Changed = false;
      uint64_t Delta = 0;
      for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
           ++EntryIndex) {
        const FlowSets &NewSets = In[R.EntryBlocks[EntryIndex]];
        FlowSets &Stored = EntrySets[RoutineIndex][EntryIndex];
        if (MayUsePass) {
          if (NewSets.MayUse != Stored.MayUse) {
            Changed = true;
            if (Prof)
              Delta += changedBits(Stored.MayUse, NewSets.MayUse);
          }
          Stored.MayUse = NewSets.MayUse;
        } else {
          if (NewSets.MustDef != Stored.MustDef ||
              NewSets.MayDef != Stored.MayDef) {
            Changed = true;
            if (Prof)
              Delta += changedBits(Stored.MustDef, NewSets.MustDef) +
                       changedBits(Stored.MayDef, NewSets.MayDef);
          }
          Stored = NewSets;
        }
      }
      if (Prof && Changed)
        Prof->ChangedBits.record(Delta);
      if (Changed)
        for (uint32_t Caller : Callers[RoutineIndex]) {
          int32_t CallerLocal = localOf(Members, Caller);
          if (CallerLocal >= 0)
            List.push(uint32_t(CallerLocal));
        }
    }
    if (Prof)
      for (uint32_t Count : LocalPops)
        Prof->Iters = std::max<uint64_t>(Prof->Iters, Count);
  }

  // Like the PSG solver, phase 1 runs in two passes: the MAY-USE
  // equation subtracts callee MUST-DEF, so iterating everything at once
  // is non-monotone and can oscillate on recursive call graphs.  Pass A
  // converges the (monotone, self-contained) MUST-DEF/MAY-DEF summaries;
  // pass B restarts MAY-USE from bottom with them frozen.
  void runPhase1() {
    SccSchedule Sched = buildCalleeFirstSchedule(Prog, Graph);
    bool Profile = telemetry::profiling();
    std::vector<telemetry::GroupCost> Profiles(Profile ? Sched.NumGroups : 0);
    std::vector<uint64_t> RoutinePops(Profile ? Prog.Routines.size() : 0, 0);
    for (telemetry::GroupCost &P : Profiles)
      P.RoutinePops = RoutinePops.data();
    auto RunPass = [&](bool MayUsePass) {
      for (const std::vector<uint32_t> &Level : Sched.Levels)
        forEachTask(Pool, Level.size(), [&](size_t I, unsigned) {
          uint32_t Group = Level[I];
          telemetry::GroupCost *Prof = Profile ? &Profiles[Group] : nullptr;
          uint64_t T0 = Prof ? telemetry::costClockNs() : 0;
          solveGroupPhase1(Sched.Members[Group], MayUsePass, Prof);
          if (Prof)
            Prof->Ns += telemetry::costClockNs() - T0;
        });
    };

    RunPass(false);
    for (auto &PerEntry : EntrySets)
      for (FlowSets &Sets : PerEntry)
        Sets.MayUse = RegSet();
    RunPass(true);
    if (Profile)
      telemetry::emitGroupCosts(
          "interproc.phase1", Profiles,
          [&](size_t Group) -> const std::vector<uint32_t> & {
            return Sched.Members[Group];
          },
          [&](uint32_t Routine) -> std::string_view {
            return Prog.Routines[Routine].Name;
          },
          RoutinePops.data());
  }

  /// Solves intra-routine liveness for \p RoutineIndex with the current
  /// exit seeds and call summaries.
  LivenessResult solveRoutineLiveness(uint32_t RoutineIndex) const {
    const Routine &R = Prog.Routines[RoutineIndex];
    RegSet ExitLive = LiveAtExit[RoutineIndex];
    return solveLiveness(
        R,
        [&](uint32_t BlockIndex) {
          FlowSets Label = crLabel(R.Blocks[BlockIndex]);
          return CallEffect{Label.MayUse, Label.MustDef};
        },
        [&](uint32_t) { return ExitLive; },
        [&](uint32_t BlockIndex) {
          return Prog.jumpTargetLive(R.Blocks[BlockIndex].End - 1);
        });
  }

  /// Solves one component's phase-2 liveness.  Exit liveness is *pulled*:
  /// a routine's live-at-exit is its seed, joined with the return-point
  /// liveness of all its call sites (in-component sites iterate here;
  /// others converged in earlier levels) and, for address-taken routines,
  /// the indirect accumulator.  \p AccumIn is the accumulator merged from
  /// earlier levels; the (possibly grown) value is returned for the level
  /// join, exactly like the PSG solver.
  RegSet solveGroupPhase2(const std::vector<uint32_t> &Members,
                          RegSet AccumIn, telemetry::GroupCost *Prof) {
    RegSet LocalAccum = AccumIn;
    Worklist List(Members.size());
    List.pushAll();
    uint64_t Pops = 0;
    std::vector<uint32_t> LocalPops(Prof ? Members.size() : 0, 0);
    while (!List.empty()) {
      if (Gov) {
        BudgetVerdict V = Gov->poll(++Pops);
        if (V != BudgetVerdict::Ok)
          throwBlown(V, "cfg-two-phase.phase2", Members);
      }
      uint32_t Local = List.pop();
      uint32_t RoutineIndex = Members[Local];
      const Routine &R = Prog.Routines[RoutineIndex];
      if (Prof) {
        ++Prof->Pops;
        ++Prof->RoutinePops[RoutineIndex];
        ++LocalPops[Local];
        // No inner worklist stats from solveLiveness, so the blocks it
        // sweeps stand in for the set operations of this solve.
        Prof->SetOps += R.Blocks.size();
      }

      RegSet ExitLive = ExitSeedOfRoutine[RoutineIndex];
      for (const auto &[Caller, CallIndex] : CallerSites[RoutineIndex])
        ExitLive |= ReturnLive[Caller][CallIndex];
      if (R.AddressTaken)
        ExitLive |= LocalAccum;
      LiveAtExit[RoutineIndex] = ExitLive;

      LivenessResult Live = solveRoutineLiveness(RoutineIndex);
      for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
           ++EntryIndex)
        LiveAtEntry[RoutineIndex][EntryIndex] =
            Live.LiveIn[R.EntryBlocks[EntryIndex]];

      uint64_t Delta = 0;
      for (uint32_t CallIndex = 0; CallIndex < R.CallBlocks.size();
           ++CallIndex) {
        const BasicBlock &BlockRef = R.Blocks[R.CallBlocks[CallIndex]];
        RegSet AtReturn = Live.LiveOut[R.CallBlocks[CallIndex]];
        if (ReturnLive[RoutineIndex][CallIndex] == AtReturn)
          continue;
        if (Prof)
          Delta += changedBits(ReturnLive[RoutineIndex][CallIndex], AtReturn);
        ReturnLive[RoutineIndex][CallIndex] = AtReturn;
        if (BlockRef.Term == TerminatorKind::Call) {
          int32_t CalleeLocal = localOf(Members, BlockRef.CalleeRoutine);
          if (CalleeLocal >= 0)
            List.push(uint32_t(CalleeLocal));
        } else if (!LocalAccum.containsAll(AtReturn)) {
          LocalAccum |= AtReturn;
          for (uint32_t M = 0; M < Members.size(); ++M)
            if (Prog.Routines[Members[M]].AddressTaken)
              List.push(M);
        }
      }
      if (Prof && Delta != 0)
        Prof->ChangedBits.record(Delta);
    }
    if (Prof)
      for (uint32_t Count : LocalPops)
        Prof->Iters = std::max<uint64_t>(Prof->Iters, Count);
    return LocalAccum;
  }

  void runPhase2() {
    RegSet UnknownCallerLive = Prog.Conv.unknownCallerLiveAtExit();
    ExitSeedOfRoutine.assign(Prog.Routines.size(), RegSet());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      if (int32_t(RoutineIndex) == Prog.EntryRoutine ||
          Prog.Routines[RoutineIndex].AddressTaken)
        ExitSeedOfRoutine[RoutineIndex] = UnknownCallerLive;
      // Mirrors the PSG solver: returning into quarantined (or unowned)
      // code must assume everything live, not just the calling
      // standard's unknown-caller set.
      if (Prog.Routines[RoutineIndex].CalledFromQuarantine)
        ExitSeedOfRoutine[RoutineIndex] |= AllRegs;
    }

    SccSchedule Sched = buildCallerFirstSchedule(Prog, Graph);
    bool Profile = telemetry::profiling();
    std::vector<telemetry::GroupCost> Profiles(Profile ? Sched.NumGroups : 0);
    std::vector<uint64_t> RoutinePops(Profile ? Prog.Routines.size() : 0, 0);
    for (telemetry::GroupCost &P : Profiles)
      P.RoutinePops = RoutinePops.data();
    RegSet IndirectAccum;
    std::vector<RegSet> GroupAccum(Sched.NumGroups);
    for (const std::vector<uint32_t> &Level : Sched.Levels) {
      forEachTask(Pool, Level.size(), [&](size_t I, unsigned) {
        uint32_t Group = Level[I];
        if (Sched.Members[Group].empty())
          return;
        telemetry::GroupCost *Prof = Profile ? &Profiles[Group] : nullptr;
        uint64_t T0 = Prof ? telemetry::costClockNs() : 0;
        GroupAccum[Group] =
            solveGroupPhase2(Sched.Members[Group], IndirectAccum, Prof);
        if (Prof)
          Prof->Ns += telemetry::costClockNs() - T0;
      });
      for (uint32_t Group : Level)
        IndirectAccum |= GroupAccum[Group];
    }
    if (Profile)
      telemetry::emitGroupCosts(
          "interproc.phase2", Profiles,
          [&](size_t Group) -> const std::vector<uint32_t> & {
            return Sched.Members[Group];
          },
          [&](uint32_t Routine) -> std::string_view {
            return Prog.Routines[Routine].Name;
          },
          RoutinePops.data());
  }

  const Program &Prog;
  const std::vector<RegSet> &Saved;
  ThreadPool *Pool;
  const ResourceGovernor *Gov;
  RegSet RaOnly;
  RegSet AllRegs;
  CallGraph Graph;

  /// Unfiltered entry IN sets, per routine per entrance.
  std::vector<std::vector<FlowSets>> EntrySets;

  /// Per-routine live-at-exit (shared by all exits of a routine).
  std::vector<RegSet> LiveAtExit;

  /// Per-routine per-entrance live-at-entry.
  std::vector<std::vector<RegSet>> LiveAtEntry;

  /// Phase-2 live-at-return per call site (parallel to CallBlocks); the
  /// values callee exits pull from.
  std::vector<std::vector<RegSet>> ReturnLive;

  /// Per-routine phase-2 exit seed (unknown-caller / quarantine rules).
  std::vector<RegSet> ExitSeedOfRoutine;

  /// Reverse call graph (direct calls only).
  std::vector<std::vector<uint32_t>> Callers;

  /// Direct call sites per callee: (caller routine, call index).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> CallerSites;
};

} // namespace

InterprocSummaries
spike::runCfgTwoPhase(const Program &Prog,
                      const std::vector<RegSet> &SavedPerRoutine,
                      ThreadPool *Pool, const ResourceGovernor *Gov) {
  telemetry::Span RefSpan("interproc.cfg_two_phase");
  telemetry::count("interproc.cfg_two_phase.runs");
  TwoPhaseEngine Engine(Prog, SavedPerRoutine, Pool, Gov);
  Engine.run();
  return Engine.takeResults();
}
