//===- interproc/CfgTwoPhase.cpp - CFG-level reference analysis ----------===//

#include "interproc/CfgTwoPhase.h"

#include "telemetry/Telemetry.h"

#include "dataflow/FlowSets.h"
#include "dataflow/Liveness.h"
#include "dataflow/CallPolicy.h"
#include "dataflow/Worklist.h"
#include "psg/PsgSolver.h"

#include <cassert>

using namespace spike;

namespace {

/// Shared state of the reference analysis.
class TwoPhaseEngine {
public:
  TwoPhaseEngine(const Program &Prog,
                 const std::vector<RegSet> &SavedPerRoutine)
      : Prog(Prog), Saved(SavedPerRoutine) {
    RaOnly.insert(Prog.Conv.RaReg);
    AllRegs = RegSet::allBelow(NumIntRegs);
    EntrySets.resize(Prog.Routines.size());
    LiveAtExit.assign(Prog.Routines.size(), RegSet());
    LiveAtEntry.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      // Entry MUST-DEF starts at top, like every must-problem variable.
      EntrySets[RoutineIndex].assign(
          Prog.Routines[RoutineIndex].numEntries(),
          FlowSets{RegSet(), RegSet(), AllRegs});
      LiveAtEntry[RoutineIndex].resize(
          Prog.Routines[RoutineIndex].numEntries());
    }
    buildCallers();
  }

  void run() {
    runPhase1();
    runPhase2();
  }

  InterprocSummaries takeResults() {
    InterprocSummaries Result;
    Result.Routines.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      const Routine &R = Prog.Routines[RoutineIndex];
      RoutineResults &Out = Result.Routines[RoutineIndex];
      for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
           ++EntryIndex) {
        FlowSets Filtered = filterCalleeSaved(
            EntrySets[RoutineIndex][EntryIndex], Saved[RoutineIndex]);
        // Cap call-defined by call-killed, as extractSummaries does.
        Out.EntrySummaries.push_back({Filtered.MayUse,
                                      Filtered.MustDef & Filtered.MayDef,
                                      Filtered.MayDef});
        Out.LiveAtEntry.push_back(LiveAtEntry[RoutineIndex][EntryIndex]);
      }
      // Any exit can return to any caller, so all exits of a routine
      // share one live-at-exit value.
      Out.LiveAtExit.assign(R.ExitBlocks.size(),
                            LiveAtExit[RoutineIndex]);
    }
    return Result;
  }

private:
  void buildCallers() {
    Callers.resize(Prog.Routines.size());
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex)
      for (uint32_t Block : Prog.Routines[RoutineIndex].CallBlocks) {
        const BasicBlock &BlockRef =
            Prog.Routines[RoutineIndex].Blocks[Block];
        if (BlockRef.Term == TerminatorKind::Call)
          Callers[BlockRef.CalleeRoutine].push_back(RoutineIndex);
      }
  }

  /// The phase-1 call-return summary of the call ending \p Block, with
  /// the Section 3.4 filter and the caller-side ra fold applied.
  FlowSets crLabel(const BasicBlock &Block) const {
    FlowSets Label;
    if (Block.Term == TerminatorKind::Call) {
      FlowSets Filtered = filterCalleeSaved(
          EntrySets[Block.CalleeRoutine][uint32_t(Block.CalleeEntry)],
          Saved[Block.CalleeRoutine]);
      Label.MayUse = Filtered.MayUse - RaOnly;
      Label.MayDef = Filtered.MayDef | RaOnly;
      Label.MustDef = Filtered.MustDef | RaOnly;
    } else {
      Label = indirectCallLabel(Prog, Block);
    }
    return Label;
  }

  /// Solves the intra-routine three-set problem for routine
  /// \p RoutineIndex with the current callee summaries; returns the IN
  /// value of every block.
  std::vector<FlowSets> solveRoutineSets(uint32_t RoutineIndex) const {
    const Routine &R = Prog.Routines[RoutineIndex];
    // MUST-DEF starts at top (must problem, greatest fixpoint); the MAY
    // sets start at bottom — matching the PSG solvers.
    std::vector<FlowSets> In(R.Blocks.size(),
                             FlowSets{RegSet(), RegSet(), AllRegs});
    Worklist List(static_cast<uint32_t>(R.Blocks.size()));
    List.pushAll();
    while (!List.empty()) {
      uint32_t BlockIndex = List.pop();
      const BasicBlock &Block = R.Blocks[BlockIndex];
      FlowSets Out;
      switch (Block.Term) {
      case TerminatorKind::Return:
        Out = FlowSets::atExit();
        break;
      case TerminatorKind::UnresolvedJump:
        Out = unknownJumpBoundary(Prog, Block);
        break;
      case TerminatorKind::Halt:
        Out = FlowSets::afterHalt(AllRegs);
        break;
      default: {
        bool First = true;
        for (uint32_t Succ : Block.Succs) {
          Out = First ? In[Succ] : Out.meet(In[Succ]);
          First = false;
        }
        if (First)
          Out = FlowSets::afterHalt(AllRegs); // Dead end: no paths.
        break;
      }
      }
      if (Block.endsWithCall())
        Out = Out.throughSummary(crLabel(Block));
      FlowSets NewIn = Out.transferThrough(Block.Def, Block.Ubd);
      if (NewIn == In[BlockIndex])
        continue;
      In[BlockIndex] = NewIn;
      for (uint32_t Pred : Block.Preds)
        List.push(Pred);
    }
    return In;
  }

  // Like the PSG solver, phase 1 runs in two passes: the MAY-USE
  // equation subtracts callee MUST-DEF, so iterating everything at once
  // is non-monotone and can oscillate on recursive call graphs.  Pass A
  // converges the (monotone, self-contained) MUST-DEF/MAY-DEF summaries;
  // pass B restarts MAY-USE from bottom with them frozen.
  void runPhase1() {
    {
      Worklist List(static_cast<uint32_t>(Prog.Routines.size()));
      List.pushAll();
      while (!List.empty()) {
        uint32_t RoutineIndex = List.pop();
        const Routine &R = Prog.Routines[RoutineIndex];
        std::vector<FlowSets> In = solveRoutineSets(RoutineIndex);
        bool Changed = false;
        for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
             ++EntryIndex) {
          const FlowSets &NewSets = In[R.EntryBlocks[EntryIndex]];
          FlowSets &Stored = EntrySets[RoutineIndex][EntryIndex];
          if (NewSets.MustDef != Stored.MustDef ||
              NewSets.MayDef != Stored.MayDef)
            Changed = true;
          Stored = NewSets;
        }
        if (Changed)
          for (uint32_t Caller : Callers[RoutineIndex])
            List.push(Caller);
      }
    }

    for (auto &PerEntry : EntrySets)
      for (FlowSets &Sets : PerEntry)
        Sets.MayUse = RegSet();

    {
      Worklist List(static_cast<uint32_t>(Prog.Routines.size()));
      List.pushAll();
      while (!List.empty()) {
        uint32_t RoutineIndex = List.pop();
        const Routine &R = Prog.Routines[RoutineIndex];
        std::vector<FlowSets> In = solveRoutineSets(RoutineIndex);
        bool Changed = false;
        for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
             ++EntryIndex) {
          RegSet NewMayUse = In[R.EntryBlocks[EntryIndex]].MayUse;
          FlowSets &Stored = EntrySets[RoutineIndex][EntryIndex];
          if (NewMayUse != Stored.MayUse)
            Changed = true;
          Stored.MayUse = NewMayUse;
        }
        if (Changed)
          for (uint32_t Caller : Callers[RoutineIndex])
            List.push(Caller);
      }
    }
  }

  /// Solves intra-routine liveness for \p RoutineIndex with the current
  /// exit seeds and call summaries.
  LivenessResult solveRoutineLiveness(uint32_t RoutineIndex) const {
    const Routine &R = Prog.Routines[RoutineIndex];
    RegSet ExitLive = LiveAtExit[RoutineIndex];
    return solveLiveness(
        R,
        [&](uint32_t BlockIndex) {
          FlowSets Label = crLabel(R.Blocks[BlockIndex]);
          return CallEffect{Label.MayUse, Label.MustDef};
        },
        [&](uint32_t) { return ExitLive; },
        [&](uint32_t BlockIndex) {
          return Prog.jumpTargetLive(R.Blocks[BlockIndex].End - 1);
        });
  }

  void runPhase2() {
    RegSet UnknownCallerLive = Prog.Conv.unknownCallerLiveAtExit();
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      if (int32_t(RoutineIndex) == Prog.EntryRoutine ||
          Prog.Routines[RoutineIndex].AddressTaken)
        LiveAtExit[RoutineIndex] = UnknownCallerLive;
      // Mirrors the PSG solver: returning into quarantined (or unowned)
      // code must assume everything live, not just the calling
      // standard's unknown-caller set.
      if (Prog.Routines[RoutineIndex].CalledFromQuarantine)
        LiveAtExit[RoutineIndex] |= RegSet::allBelow(NumIntRegs);
    }

    RegSet IndirectAccum;
    Worklist List(static_cast<uint32_t>(Prog.Routines.size()));
    List.pushAll();
    while (!List.empty()) {
      uint32_t RoutineIndex = List.pop();
      const Routine &R = Prog.Routines[RoutineIndex];
      LivenessResult Live = solveRoutineLiveness(RoutineIndex);

      for (uint32_t EntryIndex = 0; EntryIndex < R.numEntries();
           ++EntryIndex)
        LiveAtEntry[RoutineIndex][EntryIndex] =
            Live.LiveIn[R.EntryBlocks[EntryIndex]];

      // Propagate return-point liveness to callee exits.
      for (uint32_t Block : R.CallBlocks) {
        const BasicBlock &BlockRef = R.Blocks[Block];
        RegSet AtReturn = Live.LiveOut[Block];
        if (BlockRef.Term == TerminatorKind::Call) {
          uint32_t Callee = BlockRef.CalleeRoutine;
          if (!LiveAtExit[Callee].containsAll(AtReturn)) {
            LiveAtExit[Callee] |= AtReturn;
            List.push(Callee);
          }
        } else if (!IndirectAccum.containsAll(AtReturn)) {
          IndirectAccum |= AtReturn;
          for (uint32_t Other = 0; Other < Prog.Routines.size(); ++Other)
            if (Prog.Routines[Other].AddressTaken &&
                !LiveAtExit[Other].containsAll(IndirectAccum)) {
              LiveAtExit[Other] |= IndirectAccum;
              List.push(Other);
            }
        }
      }
    }
  }

  const Program &Prog;
  const std::vector<RegSet> &Saved;
  RegSet RaOnly;
  RegSet AllRegs;

  /// Unfiltered entry IN sets, per routine per entrance.
  std::vector<std::vector<FlowSets>> EntrySets;

  /// Per-routine live-at-exit (shared by all exits of a routine).
  std::vector<RegSet> LiveAtExit;

  /// Per-routine per-entrance live-at-entry.
  std::vector<std::vector<RegSet>> LiveAtEntry;

  /// Reverse call graph (direct calls only).
  std::vector<std::vector<uint32_t>> Callers;
};

} // namespace

InterprocSummaries
spike::runCfgTwoPhase(const Program &Prog,
                      const std::vector<RegSet> &SavedPerRoutine) {
  telemetry::Span RefSpan("interproc.cfg_two_phase");
  telemetry::count("interproc.cfg_two_phase.runs");
  TwoPhaseEngine Engine(Prog, SavedPerRoutine);
  Engine.run();
  return Engine.takeResults();
}
