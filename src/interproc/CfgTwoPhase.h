//===- interproc/CfgTwoPhase.h - CFG-level reference analysis -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference implementation of the paper's two-phase interprocedural
/// analysis computed directly on per-routine CFGs, without the PSG.
///
/// It computes exactly the meet-over-all-valid-paths solution the PSG
/// computes — same call-return summarization (phase 1), same caller-seeded
/// exit liveness (phase 2), same Section 3.4/3.5 rules — but iterates at
/// basic-block granularity.  Its only purpose is to be obviously correct
/// and slow: the property tests assert that the PSG analysis produces
/// identical summaries and live sets on randomized programs, and the
/// ablation bench measures the PSG's compaction payoff against it.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_INTERPROC_CFGTWOPHASE_H
#define SPIKE_INTERPROC_CFGTWOPHASE_H

#include "cfg/Program.h"
#include "psg/Summaries.h"
#include "support/RegSet.h"

#include <vector>

namespace spike {

class ResourceGovernor;
class ThreadPool;

/// Runs the reference two-phase analysis on \p Prog.
/// \p SavedPerRoutine is the per-routine Section 3.4 filter set (use the
/// same sets as the PSG run for apples-to-apples comparison).  When
/// \p Pool is non-null, call-graph components without mutual dependencies
/// solve concurrently; the results are identical either way.  When \p Gov
/// is non-null, each component's worklist polls it per pop and throws
/// BudgetBlownError naming the component's routines on a non-Ok verdict.
InterprocSummaries
runCfgTwoPhase(const Program &Prog,
               const std::vector<RegSet> &SavedPerRoutine,
               ThreadPool *Pool = nullptr,
               const ResourceGovernor *Gov = nullptr);

} // namespace spike

#endif // SPIKE_INTERPROC_CFGTWOPHASE_H
