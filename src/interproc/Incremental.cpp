//===- interproc/Incremental.cpp - Incremental re-analysis ----------------===//

#include "interproc/Incremental.h"

#include "cfg/CfgBuilder.h"
#include "cfg/SaveRestore.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <memory>

using namespace spike;

namespace {

/// Field-wise basic-block equality (the record has no operator== because
/// nothing else needs one).
bool sameBlockRecord(const BasicBlock &A, const BasicBlock &B) {
  return A.Begin == B.Begin && A.End == B.End && A.Succs == B.Succs &&
         A.Preds == B.Preds && A.Term == B.Term &&
         A.CalleeRoutine == B.CalleeRoutine &&
         A.CalleeEntry == B.CalleeEntry &&
         A.JumpTableIndex == B.JumpTableIndex && A.Def == B.Def &&
         A.Ubd == B.Ubd;
}

/// Deep equality of the whole routine record: everything the PSG builder
/// and both solvers read.  Equal records (plus equal instruction and
/// annotation slices) imply an identical per-routine PSG node/edge
/// layout and identical transfer functions — the PhaseReuse premise.
bool sameRoutineRecord(const Routine &A, const Routine &B) {
  if (A.Name != B.Name || A.Begin != B.Begin || A.End != B.End ||
      A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t I = 0; I < A.Blocks.size(); ++I)
    if (!sameBlockRecord(A.Blocks[I], B.Blocks[I]))
      return false;
  return A.EntryAddresses == B.EntryAddresses &&
         A.EntryBlocks == B.EntryBlocks && A.ExitBlocks == B.ExitBlocks &&
         A.CallBlocks == B.CallBlocks && A.AddressTaken == B.AddressTaken &&
         A.Quarantined == B.Quarantined &&
         A.QuarantineReason == B.QuarantineReason &&
         A.Degrade == B.Degrade &&
         A.CalledFromQuarantine == B.CalledFromQuarantine &&
         A.NumBranches == B.NumBranches;
}

/// Equality of a Section 3.5 annotation map restricted to [Begin, End).
template <class MapT>
bool sameAnnotationSlice(const MapT &A, const MapT &B, uint64_t Begin,
                         uint64_t End) {
  return std::equal(A.lower_bound(Begin), A.lower_bound(End),
                    B.lower_bound(Begin), B.lower_bound(End));
}

/// True when both versions partition the code into the same routines —
/// the precondition for routine-indexed reuse.  (Patches replace a
/// routine's words in place, so this holds for every patch-routine
/// request; a `load` of an unrelated image fails it and falls back.)
bool samePartition(const Program &Old, const Program &New) {
  if (Old.Routines.size() != New.Routines.size() ||
      Old.EntryRoutine != New.EntryRoutine)
    return false;
  for (size_t R = 0; R < Old.Routines.size(); ++R) {
    const Routine &A = Old.Routines[R], &B = New.Routines[R];
    if (A.Name != B.Name || A.Begin != B.Begin || A.End != B.End)
      return false;
  }
  return true;
}

/// True when routine \p R is structurally identical in both versions:
/// same decoded instructions, same CFG record, same annotation slices.
bool structurallyClean(const Program &Old, const Program &New, uint32_t R) {
  const Routine &A = Old.Routines[R], &B = New.Routines[R];
  if (!sameRoutineRecord(A, B))
    return false;
  for (uint64_t Addr = B.Begin; Addr < B.End; ++Addr)
    if (!(Old.Insts[Addr] == New.Insts[Addr]))
      return false;
  return sameAnnotationSlice(Old.CallAnnotations, New.CallAnnotations,
                             B.Begin, B.End) &&
         sameAnnotationSlice(Old.JumpLiveAnnotations,
                             New.JumpLiveAnnotations, B.Begin, B.End);
}

/// The full-solve escape hatch: correctness never depends on reuse.
IncrementalOutcome fullFallback(const Image &NewImg, const CallingConv &Conv,
                                const AnalysisOptions &Opts,
                                AnalysisResult &A, SlotFlowResult *Slots) {
  telemetry::count("incremental.full_fallbacks");
  A = analyzeImage(NewImg, Conv, Opts);
  if (Slots) {
    // The governor's memory pointer was attached to the moved-from
    // temporary inside analyzeImage; repoint it before metering more.
    if (Opts.Governor && Opts.Governor->enabled())
      Opts.Governor->attachMemory(&A.Memory);
    ThreadPool Pool(Opts.Jobs);
    *Slots = solveSlotFlow(A.Prog, &Pool,
                           Opts.Governor && Opts.Governor->enabled()
                               ? Opts.Governor
                               : nullptr);
  }
  IncrementalOutcome Out;
  Out.Full = true;
  Out.StructDirty = A.Prog.Routines.size();
  Out.Phase1Dirty = Out.Phase2Dirty = Out.StructDirty;
  if (Slots)
    Out.SlotPhase1Dirty = Out.SlotPhase2Dirty = Out.StructDirty;
  return Out;
}

} // namespace

IncrementalOutcome spike::reanalyzeIncremental(const Image &NewImg,
                                               const CallingConv &Conv,
                                               const AnalysisOptions &Opts,
                                               AnalysisResult &A,
                                               SlotFlowResult *Slots) {
  telemetry::Span Span("reanalyze");
  telemetry::count("incremental.runs");

  // Reuse restores provenance slots from the old store; without one there
  // is nothing to restore from.
  if (Opts.RecordProvenance && !A.Provenance.enabled())
    return fullFallback(NewImg, Conv, Opts, A, Slots);

  AnalysisResult New;
  const ResourceGovernor *Gov = nullptr;
  if (Opts.Governor && Opts.Governor->enabled()) {
    Opts.Governor->attachMemory(&New.Memory);
    Opts.Governor->arm();
    Gov = Opts.Governor;
  }

  ThreadPool Pool(Opts.Jobs);

  {
    StageTimer::Scope Scope(New.Stages, AnalysisStage::CfgBuild);
    New.Prog = buildProgram(NewImg, Conv, &New.Memory, Opts.Cfg, &Pool);
  }
  if (Gov)
    Gov->pollOrThrow("analyze.cfg-build");

  {
    StageTimer::Scope Scope(New.Stages, AnalysisStage::Initialization);
    telemetry::Span InitSpan("init");
    computeDefUbd(New.Prog, &Pool);
    New.SavedPerRoutine.resize(New.Prog.Routines.size());
    forEachTask(&Pool, New.Prog.Routines.size(),
                [&](size_t RoutineIndex, unsigned) {
                  New.SavedPerRoutine[RoutineIndex] =
                      analyzeSaveRestore(New.Prog,
                                         New.Prog.Routines[RoutineIndex])
                          .Saved;
                });
    New.Memory.charge(New.SavedPerRoutine.size() * sizeof(RegSet));
  }

  if (!samePartition(A.Prog, New.Prog))
    return fullFallback(NewImg, Conv, Opts, A, Slots);

  // The structural diff.  Def/Ubd are compared too, so it must run after
  // computeDefUbd; each routine's diff is independent work.
  size_t NumRoutines = New.Prog.Routines.size();
  std::vector<uint8_t> StructClean(NumRoutines, 0);
  forEachTask(&Pool, NumRoutines, [&](size_t R, unsigned) {
    StructClean[R] = structurallyClean(A.Prog, New.Prog, uint32_t(R));
  });

  // Every routine clean: the resident result is already the converged
  // answer for this image (the no-change save a client sends when
  // re-publishing an unmodified routine).  Skip the PSG build, both
  // phases, summary extraction, and the slot re-solve outright.
  if (std::all_of(StructClean.begin(), StructClean.end(),
                  [](uint8_t C) { return C != 0; })) {
    telemetry::count("incremental.clean_noops");
    if (Gov)
      Opts.Governor->attachMemory(&A.Memory);
    return IncrementalOutcome();
  }

  {
    StageTimer::Scope Scope(New.Stages, AnalysisStage::PsgBuild);
    New.Psg = buildPsg(New.Prog, Opts.Psg, &New.Memory, &Pool);
  }
  if (Gov)
    Gov->pollOrThrow("analyze.psg-build");

  ProvenanceStore *Prov = nullptr;
  if (Opts.RecordProvenance) {
    New.Provenance.init(New.Psg.Nodes.size());
    New.Memory.charge(New.Provenance.bytes());
    Prov = &New.Provenance;
  }

  IncrementalOutcome Out;
  std::unique_ptr<std::atomic<uint8_t>[]> Dirty(
      new std::atomic<uint8_t>[NumRoutines]);
  for (size_t R = 0; R < NumRoutines; ++R) {
    Dirty[R].store(StructClean[R] ? 0 : 1, std::memory_order_relaxed);
    Out.StructDirty += !StructClean[R];
  }
  std::atomic<uint8_t> Escalated{0};

  PhaseReuse Reuse;
  Reuse.OldProg = &A.Prog;
  Reuse.OldPsg = &A.Psg;
  Reuse.OldProv = Opts.RecordProvenance ? &A.Provenance : nullptr;
  Reuse.StructClean = &StructClean;
  Reuse.Dirty = Dirty.get();
  Reuse.EscalatedOut = &Escalated;

  {
    StageTimer::Scope Scope(New.Stages, AnalysisStage::Phase1);
    New.Phase1Stats = runPhase1(New.Prog, New.Psg, New.SavedPerRoutine,
                                &Pool, Prov, Gov, &Reuse);
  }
  for (size_t R = 0; R < NumRoutines; ++R)
    Out.Phase1Dirty += Dirty[R].load(std::memory_order_relaxed) != 0;

  // Phase 2 seeding: beyond phase 1's final flags, every routine a
  // struct-dirty routine calls in *either* version re-solves — a dropped
  // call site shrinks the old callee's exit liveness, which no new-graph
  // walk would notice.
  auto FlagCallees = [&](const Program &P, uint32_t R) {
    for (uint32_t CallBlock : P.Routines[R].CallBlocks) {
      int32_t Callee = P.Routines[R].Blocks[CallBlock].CalleeRoutine;
      if (Callee >= 0)
        Dirty[Callee].store(1, std::memory_order_relaxed);
    }
  };
  for (uint32_t R = 0; R < NumRoutines; ++R)
    if (!StructClean[R]) {
      FlagCallees(A.Prog, R);
      FlagCallees(New.Prog, R);
    }

  {
    StageTimer::Scope Scope(New.Stages, AnalysisStage::Phase2);
    New.Phase2Stats = runPhase2(New.Prog, New.Psg, &Pool, Prov, Gov, &Reuse);
  }
  Out.Phase2Escalated = Escalated.load(std::memory_order_relaxed) != 0;
  for (size_t R = 0; R < NumRoutines; ++R)
    Out.Phase2Dirty += Dirty[R].load(std::memory_order_relaxed) != 0;

  // Summary extraction is a cheap pure read of the converged graph; run
  // it in full rather than diffing.
  New.Summaries = extractSummaries(New.Prog, New.Psg, New.SavedPerRoutine);

  // The slot engine re-solves with its own reuse seeds before the swap,
  // so a budget blow leaves both resident stores untouched.
  SlotFlowResult NewSlots;
  if (Slots) {
    std::vector<uint8_t> SlotPhase2Seeds(NumRoutines, 0);
    for (uint32_t R = 0; R < NumRoutines; ++R)
      if (!StructClean[R]) {
        for (uint32_t CallBlock : A.Prog.Routines[R].CallBlocks) {
          int32_t Callee = A.Prog.Routines[R].Blocks[CallBlock].CalleeRoutine;
          if (Callee >= 0)
            SlotPhase2Seeds[Callee] = 1;
        }
        for (uint32_t CallBlock : New.Prog.Routines[R].CallBlocks) {
          int32_t Callee =
              New.Prog.Routines[R].Blocks[CallBlock].CalleeRoutine;
          if (Callee >= 0)
            SlotPhase2Seeds[Callee] = 1;
        }
      }
    SlotReuse SReuse;
    SReuse.Old = Slots;
    SReuse.StructClean = &StructClean;
    SReuse.Phase2Seeds = &SlotPhase2Seeds;
    SlotReuseStats SStats;
    NewSlots = solveSlotFlowIncremental(New.Prog, SReuse, &Pool, Gov,
                                        &SStats);
    Out.SlotFull = SStats.Full;
    Out.SlotPhase1Dirty = SStats.Phase1Dirty;
    Out.SlotPhase2Dirty = SStats.Phase2Dirty;
  }

  if (Prov) {
    telemetry::count("provenance.records",
                     New.Phase1Stats.ProvenanceRecords +
                         New.Phase2Stats.ProvenanceRecords);
    telemetry::gaugeHigh("provenance.bytes", New.Provenance.bytes());
  }
  telemetry::count("incremental.struct_dirty", Out.StructDirty);
  telemetry::count("incremental.phase1_dirty", Out.Phase1Dirty);
  telemetry::count("incremental.phase2_dirty", Out.Phase2Dirty);
  telemetry::gaugeHigh("analyze.memory.peak_bytes", New.Memory.peakBytes());
  telemetry::gaugeSet("analysis.jobs", Pool.jobs());
  telemetry::count("pool.tasks", Pool.tasksRun());
  telemetry::count("pool.steals", Pool.steals());

  A = std::move(New);
  if (Slots)
    *Slots = std::move(NewSlots);
  if (Gov)
    Opts.Governor->attachMemory(&A.Memory);
  return Out;
}
