//===- interproc/Supergraph.h - Whole-program CFG baseline ----*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper's compact representation is measured against:
/// interprocedural dataflow over the program's entire control-flow graph,
/// "constructed by connecting the CFG representing each routine with
/// additional arcs representing calls and returns between the routines"
/// ([Srivastava93]; Figure 2 of the paper).
///
/// The supergraph is context-insensitive: liveness computed over it is
/// the meet over *all* paths, including invalid call/return pairings, so
/// its live sets are supersets of the PSG's valid-path solution (the
/// containment is property-tested).  Indirect calls are wired through a
/// pair of hub nodes to every address-taken routine, keeping the arc
/// count linear.
///
/// Table 5 uses the supergraph's block and arc counts; the ablation
/// bench compares its solve time against the PSG pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_INTERPROC_SUPERGRAPH_H
#define SPIKE_INTERPROC_SUPERGRAPH_H

#include "cfg/Program.h"
#include "support/RegSet.h"

#include <cstdint>
#include <vector>

namespace spike {

/// The flattened whole-program graph.
struct Supergraph {
  /// Global node id of routine r's block b is BlockBase[r] + b.  Two
  /// extra nodes follow the blocks when indirect calls exist: the
  /// indirect-call hub (HubCall) and the indirect-return hub (HubReturn).
  std::vector<uint32_t> BlockBase;
  uint32_t NumNodes = 0;
  int64_t HubCall = -1;
  int64_t HubReturn = -1;

  /// CSR successor / predecessor adjacency.
  std::vector<uint32_t> SuccBegin, SuccIds;
  std::vector<uint32_t> PredBegin, PredIds;

  /// Arc-count statistics.
  uint64_t NumIntraArcs = 0;
  uint64_t NumCallArcs = 0;   ///< Call block -> callee entry block.
  uint64_t NumReturnArcs = 0; ///< Callee exit block -> return point.

  uint64_t numArcs() const {
    return NumIntraArcs + NumCallArcs + NumReturnArcs;
  }

  /// Returns the global node id of (routine, block).
  uint32_t nodeOf(uint32_t RoutineIndex, uint32_t BlockIndex) const {
    return BlockBase[RoutineIndex] + BlockIndex;
  }
};

/// Builds the supergraph of \p Prog.
Supergraph buildSupergraph(const Program &Prog);

/// Per-block live-in/live-out over the supergraph.
struct SupergraphLiveness {
  std::vector<RegSet> LiveIn;  ///< Indexed by global node id.
  std::vector<RegSet> LiveOut;
};

/// Solves whole-program liveness over the supergraph: call arcs enter the
/// callee, return arcs leave its exits, no summaries anywhere.
SupergraphLiveness solveSupergraphLiveness(const Program &Prog,
                                           const Supergraph &Graph);

} // namespace spike

#endif // SPIKE_INTERPROC_SUPERGRAPH_H
