//===- isa/Instruction.h - Synthetic ISA instructions ---------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes, instruction records, and per-instruction register semantics of
/// the synthetic Alpha-like ISA.
///
/// The dataflow analysis consumes only three things per instruction: the
/// registers it defines, the registers it uses, and how it affects control
/// flow (branch / call / return / indirect jump).  The ISA is deliberately
/// small but covers everything the paper's infrastructure needs:
/// three-operand integer operate instructions, immediate forms, loads and
/// stores, conditional and unconditional branches, direct and indirect
/// calls, jump-table multiway branches, unresolved indirect jumps, and
/// return.
///
/// Instructions are encoded as fixed-size 64-bit words (see Encoding.h), so
/// "number of instructions" equals the code-section word count, matching
/// the way Table 2 counts machine instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_ISA_INSTRUCTION_H
#define SPIKE_ISA_INSTRUCTION_H

#include "isa/Registers.h"
#include "support/RegSet.h"

#include <cstdint>
#include <string>

namespace spike {

/// The opcode space of the synthetic ISA.
enum class Opcode : uint8_t {
  // Integer operate, register form: Rc = Ra <op> Rb.
  Add,
  Sub,
  And,
  Or,
  Xor,
  Sll,
  Srl,
  Mul,
  CmpEq,
  CmpLt,
  CmpLe,

  // Integer operate, immediate form: Rc = Ra <op> Imm.
  AddI,
  SubI,
  AndI,
  OrI,
  XorI,
  SllI,
  SrlI,
  MulI,
  CmpEqI,
  CmpLtI,

  // Register/immediate moves.
  Lda, ///< Rc = Imm (load address / load immediate).
  Mov, ///< Rc = Ra.

  // Memory: displacement addressing off a base register.
  Ldq, ///< Rc = Mem[Rb + Imm].
  Stq, ///< Mem[Rb + Imm] = Ra.

  // Control flow.  Branch displacements in Imm are instruction-relative
  // to the *next* instruction; call targets are absolute addresses.
  Br,     ///< Unconditional branch to PC+1+Imm.
  Beq,    ///< Branch to PC+1+Imm if Ra == 0.
  Bne,    ///< Branch to PC+1+Imm if Ra != 0.
  Blt,    ///< Branch to PC+1+Imm if Ra < 0.
  Bge,    ///< Branch to PC+1+Imm if Ra >= 0.
  Jsr,    ///< Direct call to absolute address Imm; defines ra.
  JsrR,   ///< Indirect call through Rb; defines ra.
  Ret,    ///< Return through ra.
  JmpTab, ///< Multiway branch: jump to entry Ra of jump table Imm.
  JmpR,   ///< Unresolved indirect jump through Rb.

  // Miscellaneous.
  Nop,
  Halt, ///< Stop the simulator; Ra is the observable exit value register.
};

/// Number of opcodes (used by the encoder for validation).
inline constexpr unsigned NumOpcodes = unsigned(Opcode::Halt) + 1;

/// Operand shape of an opcode, used by the printer and the encoder.
enum class OperandFormat : uint8_t {
  None,       ///< nop, ret
  RRR,        ///< add rc, ra, rb
  RRI,        ///< addi rc, ra, imm
  RI,         ///< lda rc, imm
  RR,         ///< mov rc, ra
  Load,       ///< ldq rc, imm(rb)
  Store,      ///< stq ra, imm(rb)
  BranchDisp, ///< br imm
  CondBranch, ///< beq ra, imm
  CallAbs,    ///< jsr imm
  CallReg,    ///< jsr_r rb
  TableJump,  ///< jmp_tab ra, table#imm
  RegJump,    ///< jmp_r rb
  HaltFmt,    ///< halt ra
};

/// Static properties of one opcode.
struct OpcodeInfo {
  const char *Name;      ///< Mnemonic.
  OperandFormat Format;  ///< Operand shape.
  bool IsCondBranch;     ///< Conditional intra-routine branch.
  bool IsUncondBranch;   ///< Unconditional intra-routine branch.
  bool IsCall;           ///< Direct or indirect call.
  bool IsIndirectCall;   ///< Call through a register.
  bool IsReturn;         ///< Return through ra.
  bool IsTableJump;      ///< Multiway branch through a jump table.
  bool IsUnresolvedJump; ///< Indirect jump with unknown targets.
  bool IsLoad;
  bool IsStore;
  bool IsHalt;
};

/// Returns the static properties of \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// A decoded instruction.
///
/// The field roles depend on the operand format; unused fields must be 0.
/// \c Imm holds immediates, branch displacements (relative to the next
/// instruction), absolute call targets, memory displacements, or jump-table
/// indices.
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  uint8_t Rc = 0;
  int32_t Imm = 0;

  bool operator==(const Instruction &Other) const = default;

  /// Returns the registers this instruction defines.  Writes to the
  /// hardwired zero register are discarded and do not count as defs.
  RegSet defs() const;

  /// Returns the registers this instruction uses.  Uses of the zero
  /// register still count (the value read is simply always 0); the
  /// dataflow treats them like any other use, which is conservative.
  RegSet uses() const;

  /// Returns true if this instruction ends a basic block (any branch,
  /// call, return, jump, or halt).  Following the paper, basic blocks are
  /// ended by call instructions as well as branches.
  bool endsBlock() const;

  /// Renders the instruction in assembly syntax, e.g. "addi t0, t0, 4".
  /// \p Address, when >= 0, is used to print absolute branch targets.
  std::string str(int64_t Address = -1) const;
};

/// Convenience constructors for each operand format.  These keep builder,
/// generator, and test code terse and make it impossible to mis-assign
/// operand roles.
namespace inst {
Instruction rrr(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb);
Instruction rri(Opcode Op, unsigned Rc, unsigned Ra, int32_t Imm);
Instruction lda(unsigned Rc, int32_t Imm);
Instruction mov(unsigned Rc, unsigned Ra);
Instruction ldq(unsigned Rc, int32_t Disp, unsigned Rb);
Instruction stq(unsigned Ra, int32_t Disp, unsigned Rb);
Instruction br(int32_t Disp);
Instruction condBr(Opcode Op, unsigned Ra, int32_t Disp);
Instruction jsr(int32_t Target);
Instruction jsrR(unsigned Rb);
Instruction ret();
Instruction jmpTab(unsigned Ra, int32_t TableIndex);
Instruction jmpR(unsigned Rb);
Instruction nop();
Instruction halt(unsigned Ra);
} // namespace inst

} // namespace spike

#endif // SPIKE_ISA_INSTRUCTION_H
