//===- isa/Encoding.h - Instruction word encode/decode --------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoding of the synthetic ISA.
///
/// Every instruction occupies one fixed-size 64-bit word:
///
///   bits 63..56  opcode
///   bits 55..48  ra
///   bits 47..40  rb
///   bits 39..32  rc
///   bits 31..0   imm (two's-complement)
///
/// A fixed width keeps "instruction address" and "code word index"
/// synonymous, which mirrors the fixed 32-bit Alpha encoding the paper's
/// binaries used (we need 64 bits because call targets are absolute).
/// The decoder validates opcodes and register fields so that loading a
/// corrupted image fails cleanly instead of producing garbage analysis.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_ISA_ENCODING_H
#define SPIKE_ISA_ENCODING_H

#include "isa/Instruction.h"

#include <cstdint>
#include <optional>

namespace spike {

/// Encodes \p Inst into a 64-bit code word.
uint64_t encodeInstruction(const Instruction &Inst);

/// Decodes \p Word.  Returns std::nullopt if the opcode is unknown or a
/// register field is out of range.
std::optional<Instruction> decodeInstruction(uint64_t Word);

} // namespace spike

#endif // SPIKE_ISA_ENCODING_H
