//===- isa/CallingConv.h - Alpha-NT-style calling standard ----*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The calling standard of the synthetic ISA, mirroring the Windows NT
/// calling standard for Alpha referenced by the paper as [CALLSTD].
///
/// Two parts of the analysis depend on it:
///   - Section 3.4: callee-saved registers saved and restored by a routine
///     must not appear call-used/call-killed/call-defined to callers.
///   - Section 3.5: indirect calls to unknown targets are assumed to obey
///     the calling standard (argument registers call-used, return-value
///     registers call-defined, temporaries call-killed), and unresolved
///     indirect jumps make all registers live.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_ISA_CALLINGCONV_H
#define SPIKE_ISA_CALLINGCONV_H

#include "isa/Registers.h"
#include "support/RegSet.h"

namespace spike {

/// The register-role sets of the calling standard.
///
/// All members are value sets; the default-constructed object describes the
/// standard Alpha-NT-like convention.  Tests construct variants to check
/// that the analysis honors whatever convention it is given.
struct CallingConv {
  /// Registers used to pass arguments (a0..a5).
  RegSet ArgRegs = {reg::A0, reg::A0 + 1, reg::A0 + 2,
                    reg::A0 + 3, reg::A0 + 4, reg::A5};

  /// Registers holding return values (v0).
  RegSet RetRegs = {reg::V0};

  /// Callee-saved registers (s0..s5, fp): a routine must save them before
  /// use and restore them before returning.
  RegSet CalleeSaved = {reg::S0, reg::S0 + 1, reg::S0 + 2,
                        reg::S0 + 3, reg::S0 + 4, reg::S5, reg::FP};

  /// Caller-saved scratch registers (t0..t7, t8..t11, pv, at).
  RegSet Temporaries = {1,  2,  3,  4,  5,  6,  7,  8,
                        reg::T8, 23, 24, reg::T11, reg::PV, reg::AT};

  /// The return-address register (ra).
  unsigned RaReg = reg::RA;

  /// The stack pointer (sp); preserved across calls by convention.
  unsigned SpReg = reg::SP;

  /// The global pointer (gp); preserved across calls by convention here.
  unsigned GpReg = reg::GP;

  /// The hardwired zero register.
  unsigned ZeroReg = reg::Zero;

  /// Registers assumed used by an indirect call to an unknown target
  /// (arguments plus the procedure value used to reach the callee).
  RegSet indirectCallUsed() const {
    RegSet S = ArgRegs;
    S.insert(reg::PV);
    S.insert(GpReg);
    S.insert(SpReg);
    return S;
  }

  /// Registers assumed defined by an indirect call to an unknown target.
  RegSet indirectCallDefined() const { return RetRegs; }

  /// Registers assumed killed by an indirect call to an unknown target:
  /// everything the standard does not require the callee to preserve.
  RegSet indirectCallKilled() const {
    RegSet Killed = Temporaries | RetRegs | ArgRegs;
    Killed.insert(RaReg);
    return Killed;
  }

  /// Registers assumed live at the target of an unresolved indirect jump
  /// (Section 3.5: "conservatively assumes that all registers are live").
  RegSet unknownJumpLive() const { return RegSet::allBelow(NumIntRegs); }

  /// Registers preserved across any standard-conforming call (callee-saved
  /// plus sp/gp/zero).
  RegSet preservedAcrossCalls() const {
    RegSet S = CalleeSaved;
    S.insert(SpReg);
    S.insert(GpReg);
    S.insert(ZeroReg);
    return S;
  }

  /// Registers assumed live when a routine returns to an unknown caller
  /// (e.g. the program entry routine or address-taken routines): the
  /// return values plus everything the routine was required to preserve.
  RegSet unknownCallerLiveAtExit() const {
    return RetRegs | preservedAcrossCalls();
  }
};

} // namespace spike

#endif // SPIKE_ISA_CALLINGCONV_H
