//===- isa/StackRef.cpp - Decoded stack-memory operands --------------------===//

#include "isa/StackRef.h"

using namespace spike;

StackRef spike::stackRefOf(const Instruction &Inst, unsigned SpReg) {
  StackRef Ref;
  const OpcodeInfo &Info = opcodeInfo(Inst.Op);
  if (!Info.IsLoad && !Info.IsStore)
    return Ref;
  Ref.IsStore = Info.IsStore;
  Ref.ValueReg = Info.IsStore ? Inst.Ra : Inst.Rc;
  Ref.Kind =
      Inst.Rb == SpReg ? StackRefKind::Slot : StackRefKind::Indexed;
  Ref.Offset = Inst.Imm;
  return Ref;
}

SpEffect spike::spEffectOf(const Instruction &Inst, unsigned SpReg,
                           int64_t &Delta) {
  if (!Inst.defs().contains(SpReg))
    return SpEffect::None;
  // The decodable adjustments: sp = sp + imm / sp = sp - imm.
  if (Inst.Rc == SpReg && Inst.Ra == SpReg) {
    if (Inst.Op == Opcode::AddI) {
      Delta = int64_t(Inst.Imm);
      return SpEffect::Adjust;
    }
    if (Inst.Op == Opcode::SubI) {
      Delta = -int64_t(Inst.Imm);
      return SpEffect::Adjust;
    }
  }
  return SpEffect::Clobber;
}

bool spike::escapesSp(const Instruction &Inst, unsigned SpReg) {
  StackRef Ref = stackRefOf(Inst, SpReg);
  if (Ref.Kind == StackRefKind::Slot)
    // Addressing through sp is not an escape, but storing sp's *value*
    // into a slot is.
    return Ref.IsStore && Ref.ValueReg == SpReg;
  int64_t Delta;
  if (spEffectOf(Inst, SpReg, Delta) == SpEffect::Adjust)
    return false;
  // Anything else that reads sp propagates its value somewhere the
  // analysis cannot follow: another register, indexed-store data, a
  // branch condition, an indirect target.
  return Inst.uses().contains(SpReg);
}

std::string spike::stackRefComment(const Instruction &Inst,
                                   unsigned SpReg) {
  if (escapesSp(Inst, SpReg))
    return "[sp escapes]";
  StackRef Ref = stackRefOf(Inst, SpReg);
  if (Ref.Kind == StackRefKind::Slot)
    return Ref.Offset < 0
               ? "[sp-" + std::to_string(-int64_t(Ref.Offset)) + "]"
               : "[sp+" + std::to_string(Ref.Offset) + "]";
  if (Ref.Kind == StackRefKind::Indexed)
    return "[indexed]";
  int64_t Delta = 0;
  if (spEffectOf(Inst, SpReg, Delta) == SpEffect::Adjust)
    return Delta < 0 ? "[sp -= " + std::to_string(-Delta) + "]"
                     : "[sp += " + std::to_string(Delta) + "]";
  return "";
}
