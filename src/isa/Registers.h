//===- isa/Registers.h - Synthetic Alpha-like register file ---*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integer register file of the synthetic Alpha-like ISA.
///
/// The paper analyzes Alpha/NT executables, whose integer register file has
/// 32 registers with conventional roles fixed by the Windows NT calling
/// standard for Alpha ([CALLSTD] in the paper).  We reproduce the same
/// structure: a return-value register, argument registers, caller-saved
/// temporaries, callee-saved registers, and the special ra/sp/gp/zero
/// registers.  The exact numbering follows the Alpha convention so that the
/// worked examples read naturally.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_ISA_REGISTERS_H
#define SPIKE_ISA_REGISTERS_H

#include "support/RegSet.h"

namespace spike {

/// Number of integer registers in the synthetic ISA.
inline constexpr unsigned NumIntRegs = 32;

/// Well-known register numbers (Alpha integer register conventions).
namespace reg {
inline constexpr unsigned V0 = 0;   ///< Function return value.
inline constexpr unsigned T0 = 1;   ///< First caller-saved temporary.
inline constexpr unsigned T7 = 8;   ///< Last of t0..t7.
inline constexpr unsigned S0 = 9;   ///< First callee-saved register.
inline constexpr unsigned S5 = 14;  ///< Last of s0..s5.
inline constexpr unsigned FP = 15;  ///< Frame pointer (callee-saved).
inline constexpr unsigned A0 = 16;  ///< First argument register.
inline constexpr unsigned A5 = 21;  ///< Last argument register.
inline constexpr unsigned T8 = 22;  ///< First of t8..t11.
inline constexpr unsigned T11 = 25; ///< Last of t8..t11.
inline constexpr unsigned RA = 26;  ///< Return address.
inline constexpr unsigned PV = 27;  ///< Procedure value (t12).
inline constexpr unsigned AT = 28;  ///< Assembler temporary.
inline constexpr unsigned GP = 29;  ///< Global pointer.
inline constexpr unsigned SP = 30;  ///< Stack pointer.
inline constexpr unsigned Zero = 31; ///< Hardwired zero; writes discarded.
} // namespace reg

/// Returns the conventional name of integer register \p R ("v0", "s3", ...).
const char *regName(unsigned R);

/// Parses a register name; returns NumIntRegs on failure.  Accepts both the
/// conventional names ("a0") and raw "$17" / "r17" forms.
unsigned parseRegName(const char *Name);

} // namespace spike

#endif // SPIKE_ISA_REGISTERS_H
