//===- isa/Encoding.cpp - Instruction word encode/decode -----------------===//

#include "isa/Encoding.h"

using namespace spike;

uint64_t spike::encodeInstruction(const Instruction &Inst) {
  uint64_t Word = 0;
  Word |= uint64_t(uint8_t(Inst.Op)) << 56;
  Word |= uint64_t(Inst.Ra) << 48;
  Word |= uint64_t(Inst.Rb) << 40;
  Word |= uint64_t(Inst.Rc) << 32;
  Word |= uint64_t(uint32_t(Inst.Imm));
  return Word;
}

std::optional<Instruction> spike::decodeInstruction(uint64_t Word) {
  Instruction Inst;
  unsigned Op = unsigned((Word >> 56) & 0xff);
  if (Op >= NumOpcodes)
    return std::nullopt;
  Inst.Op = Opcode(Op);
  Inst.Ra = uint8_t((Word >> 48) & 0xff);
  Inst.Rb = uint8_t((Word >> 40) & 0xff);
  Inst.Rc = uint8_t((Word >> 32) & 0xff);
  Inst.Imm = int32_t(uint32_t(Word & 0xffffffff));
  if (Inst.Ra >= NumIntRegs || Inst.Rb >= NumIntRegs || Inst.Rc >= NumIntRegs)
    return std::nullopt;
  return Inst;
}
