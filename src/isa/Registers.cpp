//===- isa/Registers.cpp - Synthetic Alpha-like register file ------------===//

#include "isa/Registers.h"

#include <cstdlib>
#include <cstring>

using namespace spike;

static const char *const RegNames[NumIntRegs] = {
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
    "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};

const char *spike::regName(unsigned R) {
  if (R >= NumIntRegs)
    return "<bad-reg>";
  return RegNames[R];
}

unsigned spike::parseRegName(const char *Name) {
  if (!Name || !*Name)
    return NumIntRegs;
  if (Name[0] == '$' || Name[0] == 'r' || Name[0] == 'R') {
    char *End = nullptr;
    unsigned long Value = std::strtoul(Name + 1, &End, 10);
    if (End != Name + 1 && *End == '\0' && Value < NumIntRegs)
      return unsigned(Value);
  }
  for (unsigned R = 0; R < NumIntRegs; ++R)
    if (std::strcmp(Name, RegNames[R]) == 0)
      return R;
  return NumIntRegs;
}
