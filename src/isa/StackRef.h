//===- isa/StackRef.h - Decoded stack-memory operands ---------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place that decides what a stack slot is.
///
/// Several consumers care whether an instruction touches the stack frame:
/// the spill-removal and save/restore passes match `imm(sp)` loads and
/// stores, the slot dataflow of src/slice classifies every memory access,
/// and spike-objdump annotates them in listings.  Each used to (or would)
/// re-derive the decoding from raw operand fields; this header centralizes
/// it so the passes and the analysis can never disagree about what a
/// frame-slot access is.
///
/// Three questions, three helpers:
///
///   stackRefOf   — is this a memory access, and if so is it a decodable
///                  `imm(sp)` slot access or an indexed access through
///                  some other base register?
///   spEffectOf   — does this instruction change the stack pointer, and
///                  if so by a decodable constant (prologue/epilogue
///                  adjustment) or unpredictably (clobber)?
///   escapesSp    — does this instruction leak the value of sp into
///                  memory or another register, after which indexed
///                  accesses anywhere may alias frame slots?
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_ISA_STACKREF_H
#define SPIKE_ISA_STACKREF_H

#include "isa/Instruction.h"

#include <cstdint>
#include <string>

namespace spike {

/// What kind of memory access an instruction performs.
enum class StackRefKind : uint8_t {
  None,    ///< Not a memory access.
  Slot,    ///< `imm(sp)`: a frame slot at a decodable offset.
  Indexed, ///< A load/store through a non-sp base: address unknown.
};

/// A decoded memory operand.
struct StackRef {
  StackRefKind Kind = StackRefKind::None;

  /// True for stores, false for loads (meaningless for Kind None).
  bool IsStore = false;

  /// The word displacement off the current sp (Kind Slot only).
  int32_t Offset = 0;

  /// The register whose value is loaded into / stored from: Rc for
  /// loads, Ra for stores (meaningless for Kind None).
  unsigned ValueReg = 0;
};

/// Decodes the memory operand of \p Inst against stack pointer \p SpReg.
StackRef stackRefOf(const Instruction &Inst, unsigned SpReg);

/// How an instruction affects the stack pointer.
enum class SpEffect : uint8_t {
  None,    ///< Does not define sp.
  Adjust,  ///< sp = sp +/- constant (frame push/pop).
  Clobber, ///< Defines sp some other way: the frame layout is lost.
};

/// Classifies \p Inst's effect on \p SpReg.  For Adjust, \p Delta
/// receives the signed word adjustment (negative for a prologue's
/// `subi sp, sp, n`).  \p Delta is untouched otherwise.
SpEffect spEffectOf(const Instruction &Inst, unsigned SpReg,
                    int64_t &Delta);

/// True if \p Inst makes the value of \p SpReg observable outside sp
/// itself — stored to memory, copied or combined into another register,
/// or used as an indirect branch/call target.  Slot accesses (which use
/// sp only for addressing) and constant adjustments do not escape.
bool escapesSp(const Instruction &Inst, unsigned SpReg);

/// A listing annotation for \p Inst's stack behaviour: "[sp+16]" for a
/// slot access, "[indexed]" for a non-sp memory access, "[sp escapes]"
/// when the sp value leaks, "[sp += n]" for frame adjustments.  Empty
/// when the instruction does none of these.
std::string stackRefComment(const Instruction &Inst, unsigned SpReg);

} // namespace spike

#endif // SPIKE_ISA_STACKREF_H
