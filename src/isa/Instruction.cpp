//===- isa/Instruction.cpp - Synthetic ISA instructions ------------------===//

#include "isa/Instruction.h"

#include <cassert>
#include <cstdio>

using namespace spike;

static const OpcodeInfo OpcodeTable[] = {
    // Name      Format                     CB     UB     Call   ICall  Ret    Tab    UJmp   Ld     St     Halt
    {"add",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"sub",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"and",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"or",      OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"xor",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"sll",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"srl",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"mul",     OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"cmpeq",   OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"cmplt",   OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"cmple",   OperandFormat::RRR,        false, false, false, false, false, false, false, false, false, false},
    {"addi",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"subi",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"andi",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"ori",     OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"xori",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"slli",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"srli",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"muli",    OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"cmpeqi",  OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"cmplti",  OperandFormat::RRI,        false, false, false, false, false, false, false, false, false, false},
    {"lda",     OperandFormat::RI,         false, false, false, false, false, false, false, false, false, false},
    {"mov",     OperandFormat::RR,         false, false, false, false, false, false, false, false, false, false},
    {"ldq",     OperandFormat::Load,       false, false, false, false, false, false, false, true,  false, false},
    {"stq",     OperandFormat::Store,      false, false, false, false, false, false, false, false, true,  false},
    {"br",      OperandFormat::BranchDisp, false, true,  false, false, false, false, false, false, false, false},
    {"beq",     OperandFormat::CondBranch, true,  false, false, false, false, false, false, false, false, false},
    {"bne",     OperandFormat::CondBranch, true,  false, false, false, false, false, false, false, false, false},
    {"blt",     OperandFormat::CondBranch, true,  false, false, false, false, false, false, false, false, false},
    {"bge",     OperandFormat::CondBranch, true,  false, false, false, false, false, false, false, false, false},
    {"jsr",     OperandFormat::CallAbs,    false, false, true,  false, false, false, false, false, false, false},
    {"jsr_r",   OperandFormat::CallReg,    false, false, true,  true,  false, false, false, false, false, false},
    {"ret",     OperandFormat::None,       false, false, false, false, true,  false, false, false, false, false},
    {"jmp_tab", OperandFormat::TableJump,  false, false, false, false, false, true,  false, false, false, false},
    {"jmp_r",   OperandFormat::RegJump,    false, false, false, false, false, false, true,  false, false, false},
    {"nop",     OperandFormat::None,       false, false, false, false, false, false, false, false, false, false},
    {"halt",    OperandFormat::HaltFmt,    false, false, false, false, false, false, false, false, false, true},
};

static_assert(sizeof(OpcodeTable) / sizeof(OpcodeTable[0]) == NumOpcodes,
              "opcode table out of sync with Opcode enum");

const OpcodeInfo &spike::opcodeInfo(Opcode Op) {
  assert(unsigned(Op) < NumOpcodes && "invalid opcode");
  return OpcodeTable[unsigned(Op)];
}

RegSet Instruction::defs() const {
  RegSet Defs;
  switch (opcodeInfo(Op).Format) {
  case OperandFormat::RRR:
  case OperandFormat::RRI:
  case OperandFormat::RI:
  case OperandFormat::RR:
  case OperandFormat::Load:
    Defs.insert(Rc);
    break;
  case OperandFormat::CallAbs:
  case OperandFormat::CallReg:
    Defs.insert(reg::RA);
    break;
  case OperandFormat::None:
  case OperandFormat::Store:
  case OperandFormat::BranchDisp:
  case OperandFormat::CondBranch:
  case OperandFormat::TableJump:
  case OperandFormat::RegJump:
  case OperandFormat::HaltFmt:
    break;
  }
  Defs.erase(reg::Zero);
  return Defs;
}

RegSet Instruction::uses() const {
  RegSet Uses;
  switch (opcodeInfo(Op).Format) {
  case OperandFormat::RRR:
    Uses.insert(Ra);
    Uses.insert(Rb);
    break;
  case OperandFormat::RRI:
  case OperandFormat::RR:
    Uses.insert(Ra);
    break;
  case OperandFormat::RI:
  case OperandFormat::None:
  case OperandFormat::BranchDisp:
  case OperandFormat::CallAbs:
    break;
  case OperandFormat::Load:
    Uses.insert(Rb);
    break;
  case OperandFormat::Store:
    Uses.insert(Ra);
    Uses.insert(Rb);
    break;
  case OperandFormat::CondBranch:
  case OperandFormat::TableJump:
  case OperandFormat::HaltFmt:
    Uses.insert(Ra);
    break;
  case OperandFormat::CallReg:
  case OperandFormat::RegJump:
    Uses.insert(Rb);
    break;
  }
  if (opcodeInfo(Op).IsReturn)
    Uses.insert(reg::RA);
  return Uses;
}

bool Instruction::endsBlock() const {
  const OpcodeInfo &Info = opcodeInfo(Op);
  return Info.IsCondBranch || Info.IsUncondBranch || Info.IsCall ||
         Info.IsReturn || Info.IsTableJump || Info.IsUnresolvedJump ||
         Info.IsHalt;
}

std::string Instruction::str(int64_t Address) const {
  const OpcodeInfo &Info = opcodeInfo(Op);
  char Buffer[128];
  auto Target = [&](int32_t Disp) -> int64_t {
    return Address >= 0 ? Address + 1 + Disp : Disp;
  };
  switch (Info.Format) {
  case OperandFormat::None:
    std::snprintf(Buffer, sizeof(Buffer), "%s", Info.Name);
    break;
  case OperandFormat::RRR:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %s, %s", Info.Name,
                  regName(Rc), regName(Ra), regName(Rb));
    break;
  case OperandFormat::RRI:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %s, %d", Info.Name,
                  regName(Rc), regName(Ra), Imm);
    break;
  case OperandFormat::RI:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %d", Info.Name,
                  regName(Rc), Imm);
    break;
  case OperandFormat::RR:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %s", Info.Name,
                  regName(Rc), regName(Ra));
    break;
  case OperandFormat::Load:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %d(%s)", Info.Name,
                  regName(Rc), Imm, regName(Rb));
    break;
  case OperandFormat::Store:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %d(%s)", Info.Name,
                  regName(Ra), Imm, regName(Rb));
    break;
  case OperandFormat::BranchDisp:
    std::snprintf(Buffer, sizeof(Buffer), "%s %lld", Info.Name,
                  (long long)Target(Imm));
    break;
  case OperandFormat::CondBranch:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, %lld", Info.Name,
                  regName(Ra), (long long)Target(Imm));
    break;
  case OperandFormat::CallAbs:
    std::snprintf(Buffer, sizeof(Buffer), "%s %d", Info.Name, Imm);
    break;
  case OperandFormat::CallReg:
  case OperandFormat::RegJump:
    std::snprintf(Buffer, sizeof(Buffer), "%s (%s)", Info.Name, regName(Rb));
    break;
  case OperandFormat::TableJump:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s, table:%d", Info.Name,
                  regName(Ra), Imm);
    break;
  case OperandFormat::HaltFmt:
    std::snprintf(Buffer, sizeof(Buffer), "%s %s", Info.Name, regName(Ra));
    break;
  }
  return Buffer;
}

namespace spike {
namespace inst {

Instruction rrr(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb) {
  assert(opcodeInfo(Op).Format == OperandFormat::RRR && "wrong format");
  Instruction I;
  I.Op = Op;
  I.Rc = uint8_t(Rc);
  I.Ra = uint8_t(Ra);
  I.Rb = uint8_t(Rb);
  return I;
}

Instruction rri(Opcode Op, unsigned Rc, unsigned Ra, int32_t Imm) {
  assert(opcodeInfo(Op).Format == OperandFormat::RRI && "wrong format");
  Instruction I;
  I.Op = Op;
  I.Rc = uint8_t(Rc);
  I.Ra = uint8_t(Ra);
  I.Imm = Imm;
  return I;
}

Instruction lda(unsigned Rc, int32_t Imm) {
  Instruction I;
  I.Op = Opcode::Lda;
  I.Rc = uint8_t(Rc);
  I.Imm = Imm;
  return I;
}

Instruction mov(unsigned Rc, unsigned Ra) {
  Instruction I;
  I.Op = Opcode::Mov;
  I.Rc = uint8_t(Rc);
  I.Ra = uint8_t(Ra);
  return I;
}

Instruction ldq(unsigned Rc, int32_t Disp, unsigned Rb) {
  Instruction I;
  I.Op = Opcode::Ldq;
  I.Rc = uint8_t(Rc);
  I.Rb = uint8_t(Rb);
  I.Imm = Disp;
  return I;
}

Instruction stq(unsigned Ra, int32_t Disp, unsigned Rb) {
  Instruction I;
  I.Op = Opcode::Stq;
  I.Ra = uint8_t(Ra);
  I.Rb = uint8_t(Rb);
  I.Imm = Disp;
  return I;
}

Instruction br(int32_t Disp) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Imm = Disp;
  return I;
}

Instruction condBr(Opcode Op, unsigned Ra, int32_t Disp) {
  assert(opcodeInfo(Op).IsCondBranch && "not a conditional branch");
  Instruction I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.Imm = Disp;
  return I;
}

Instruction jsr(int32_t Target) {
  Instruction I;
  I.Op = Opcode::Jsr;
  I.Imm = Target;
  return I;
}

Instruction jsrR(unsigned Rb) {
  Instruction I;
  I.Op = Opcode::JsrR;
  I.Rb = uint8_t(Rb);
  return I;
}

Instruction ret() {
  Instruction I;
  I.Op = Opcode::Ret;
  return I;
}

Instruction jmpTab(unsigned Ra, int32_t TableIndex) {
  Instruction I;
  I.Op = Opcode::JmpTab;
  I.Ra = uint8_t(Ra);
  I.Imm = TableIndex;
  return I;
}

Instruction jmpR(unsigned Rb) {
  Instruction I;
  I.Op = Opcode::JmpR;
  I.Rb = uint8_t(Rb);
  return I;
}

Instruction nop() { return Instruction(); }

Instruction halt(unsigned Ra) {
  Instruction I;
  I.Op = Opcode::Halt;
  I.Ra = uint8_t(Ra);
  return I;
}

} // namespace inst
} // namespace spike
