//===- sim/Simulator.h - Synthetic ISA interpreter ------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter for the synthetic ISA.
///
/// Two jobs:
///   1. Soundness oracle: every optimization pass must leave a program's
///      observable behaviour (exit status, exit value, final data-section
///      contents) unchanged; property tests run images before and after
///      optimization and compare.
///   2. Benchmark substrate for the paper's Section 1 claim that the
///      summary-driven optimizations improve performance: the simulator
///      counts executed instructions, separating nops (deleted
///      instructions are overwritten with nops, which a production
///      rewriter would compact away).
///
/// Memory model: a word-addressed 64-bit memory with a private stack
/// region (sp starts at its top) and an observable data region
/// initialized from the image's data section.  The stack is deliberately
/// *not* part of observable behaviour so that spill/save slots can be
/// legally eliminated.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_SIM_SIMULATOR_H
#define SPIKE_SIM_SIMULATOR_H

#include "binary/Image.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Simulation limits and memory geometry.
struct SimOptions {
  /// Maximum instructions to execute before giving up.
  uint64_t MaxSteps = 50'000'000;

  /// Stack region size in 64-bit words.
  uint64_t StackWords = 1 << 16;

  /// Record per-address execution counts (SimResult::ExecCounts); the
  /// profile feeds Spike-style hot-routine reporting.
  bool Profile = false;
};

/// Word address of the first data-section word (the ABI constant).
inline constexpr uint64_t SimDataBase = DataSectionBase;

/// Word address one past the top of the stack (initial sp).
inline constexpr uint64_t SimStackTop = 0x100000;

/// Why a simulation ended.
enum class SimExit : uint8_t {
  Halted,         ///< Executed a halt instruction.
  MaxSteps,       ///< Step budget exhausted.
  BadPc,          ///< Control left the code section.
  BadMemory,      ///< Load/store outside stack and data regions.
  BadJumpIndex,   ///< Jump-table index out of range.
  BadInstruction, ///< Undecodable word reached.
};

/// Returns a printable name for \p Exit.
const char *simExitName(SimExit Exit);

/// The observable (and some diagnostic) outcome of a run.
struct SimResult {
  SimExit Exit = SimExit::MaxSteps;

  /// Value of the register named by the halt instruction.
  int64_t ExitValue = 0;

  /// Final contents of the data region (observable).
  std::vector<int64_t> FinalData;

  /// Total instructions executed.
  uint64_t Steps = 0;

  /// Of those, how many were nops.
  uint64_t NopSteps = 0;

  /// Executed non-nop instructions (the performance metric).
  uint64_t usefulSteps() const { return Steps - NopSteps; }

  /// Per-address execution counts (empty unless SimOptions::Profile).
  std::vector<uint64_t> ExecCounts;

  /// True if two runs are observably equivalent.
  bool sameObservable(const SimResult &Other) const {
    return Exit == Other.Exit && ExitValue == Other.ExitValue &&
           FinalData == Other.FinalData;
  }
};

/// Runs \p Img from its entry address with all registers zero except sp.
SimResult simulate(const Image &Img, const SimOptions &Opts = {});

/// Runs \p Img with the argument registers a0..a5 preloaded from
/// \p Args (missing entries default to zero), for input-sensitive tests.
SimResult simulateWithArgs(const Image &Img,
                           const std::vector<int64_t> &Args,
                           const SimOptions &Opts = {});

} // namespace spike

#endif // SPIKE_SIM_SIMULATOR_H
