//===- sim/Simulator.cpp - Synthetic ISA interpreter ----------------------===//

#include "sim/Simulator.h"

#include "isa/Encoding.h"
#include "isa/Registers.h"

#include <array>
#include <cassert>

using namespace spike;

const char *spike::simExitName(SimExit Exit) {
  switch (Exit) {
  case SimExit::Halted:
    return "halted";
  case SimExit::MaxSteps:
    return "max-steps";
  case SimExit::BadPc:
    return "bad-pc";
  case SimExit::BadMemory:
    return "bad-memory";
  case SimExit::BadJumpIndex:
    return "bad-jump-index";
  case SimExit::BadInstruction:
    return "bad-instruction";
  }
  assert(false && "unknown exit kind");
  return "<bad>";
}

namespace {

/// The machine state of one run.
class Machine {
public:
  Machine(const Image &Img, const SimOptions &Opts)
      : Img(Img), Opts(Opts), Stack(Opts.StackWords, 0),
        Data(Img.Data) {
    Regs.fill(0);
    Regs[reg::SP] = int64_t(SimStackTop);
  }

  void setArgs(const std::vector<int64_t> &Args) {
    for (size_t I = 0; I < Args.size() && I < 6; ++I)
      Regs[reg::A0 + I] = Args[I];
  }

  SimResult run() {
    SimResult Result;
    if (Opts.Profile)
      Result.ExecCounts.assign(Img.Code.size(), 0);
    uint64_t Pc = Img.EntryAddress;
    while (Result.Steps < Opts.MaxSteps) {
      if (Pc >= Img.Code.size()) {
        Result.Exit = SimExit::BadPc;
        break;
      }
      std::optional<Instruction> Decoded = decodeInstruction(Img.Code[Pc]);
      if (!Decoded) {
        Result.Exit = SimExit::BadInstruction;
        break;
      }
      const Instruction &Inst = *Decoded;
      ++Result.Steps;
      if (Opts.Profile)
        ++Result.ExecCounts[Pc];
      if (Inst.Op == Opcode::Nop)
        ++Result.NopSteps;

      uint64_t Next = Pc + 1;
      bool Fault = false;
      switch (Inst.Op) {
      case Opcode::Add:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) +
                             uint64_t(get(Inst.Rb))));
        break;
      case Opcode::Sub:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) -
                             uint64_t(get(Inst.Rb))));
        break;
      case Opcode::And:
        set(Inst.Rc, get(Inst.Ra) & get(Inst.Rb));
        break;
      case Opcode::Or:
        set(Inst.Rc, get(Inst.Ra) | get(Inst.Rb));
        break;
      case Opcode::Xor:
        set(Inst.Rc, get(Inst.Ra) ^ get(Inst.Rb));
        break;
      case Opcode::Sll:
        set(Inst.Rc, shiftLeft(get(Inst.Ra), get(Inst.Rb)));
        break;
      case Opcode::Srl:
        set(Inst.Rc, shiftRight(get(Inst.Ra), get(Inst.Rb)));
        break;
      case Opcode::Mul:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) *
                             uint64_t(get(Inst.Rb))));
        break;
      case Opcode::CmpEq:
        set(Inst.Rc, get(Inst.Ra) == get(Inst.Rb) ? 1 : 0);
        break;
      case Opcode::CmpLt:
        set(Inst.Rc, get(Inst.Ra) < get(Inst.Rb) ? 1 : 0);
        break;
      case Opcode::CmpLe:
        set(Inst.Rc, get(Inst.Ra) <= get(Inst.Rb) ? 1 : 0);
        break;
      case Opcode::AddI:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) +
                             uint64_t(int64_t(Inst.Imm))));
        break;
      case Opcode::SubI:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) -
                             uint64_t(int64_t(Inst.Imm))));
        break;
      case Opcode::AndI:
        set(Inst.Rc, get(Inst.Ra) & Inst.Imm);
        break;
      case Opcode::OrI:
        set(Inst.Rc, get(Inst.Ra) | Inst.Imm);
        break;
      case Opcode::XorI:
        set(Inst.Rc, get(Inst.Ra) ^ Inst.Imm);
        break;
      case Opcode::SllI:
        set(Inst.Rc, shiftLeft(get(Inst.Ra), Inst.Imm));
        break;
      case Opcode::SrlI:
        set(Inst.Rc, shiftRight(get(Inst.Ra), Inst.Imm));
        break;
      case Opcode::MulI:
        set(Inst.Rc, int64_t(uint64_t(get(Inst.Ra)) *
                             uint64_t(int64_t(Inst.Imm))));
        break;
      case Opcode::CmpEqI:
        set(Inst.Rc, get(Inst.Ra) == Inst.Imm ? 1 : 0);
        break;
      case Opcode::CmpLtI:
        set(Inst.Rc, get(Inst.Ra) < Inst.Imm ? 1 : 0);
        break;
      case Opcode::Lda:
        set(Inst.Rc, Inst.Imm);
        break;
      case Opcode::Mov:
        set(Inst.Rc, get(Inst.Ra));
        break;
      case Opcode::Ldq: {
        int64_t Value = 0;
        Fault = !load(uint64_t(get(Inst.Rb)) + uint64_t(int64_t(Inst.Imm)),
                      Value);
        if (!Fault)
          set(Inst.Rc, Value);
        break;
      }
      case Opcode::Stq:
        Fault = !store(uint64_t(get(Inst.Rb)) + uint64_t(int64_t(Inst.Imm)),
                       get(Inst.Ra));
        break;
      case Opcode::Br:
        Next = uint64_t(int64_t(Pc) + 1 + Inst.Imm);
        break;
      case Opcode::Beq:
        if (get(Inst.Ra) == 0)
          Next = uint64_t(int64_t(Pc) + 1 + Inst.Imm);
        break;
      case Opcode::Bne:
        if (get(Inst.Ra) != 0)
          Next = uint64_t(int64_t(Pc) + 1 + Inst.Imm);
        break;
      case Opcode::Blt:
        if (get(Inst.Ra) < 0)
          Next = uint64_t(int64_t(Pc) + 1 + Inst.Imm);
        break;
      case Opcode::Bge:
        if (get(Inst.Ra) >= 0)
          Next = uint64_t(int64_t(Pc) + 1 + Inst.Imm);
        break;
      case Opcode::Jsr:
        set(reg::RA, int64_t(Pc) + 1);
        Next = uint64_t(uint32_t(Inst.Imm));
        break;
      case Opcode::JsrR:
        set(reg::RA, int64_t(Pc) + 1);
        Next = uint64_t(get(Inst.Rb));
        break;
      case Opcode::Ret:
        Next = uint64_t(get(reg::RA));
        break;
      case Opcode::JmpTab: {
        uint64_t TableIndex = uint64_t(uint32_t(Inst.Imm));
        assert(TableIndex < Img.JumpTables.size() && "verified image");
        const JumpTable &Table = Img.JumpTables[TableIndex];
        uint64_t Index = uint64_t(get(Inst.Ra));
        if (Index >= Table.Targets.size()) {
          Result.Exit = SimExit::BadJumpIndex;
          Result.FinalData = Data;
          return Result;
        }
        Next = Table.Targets[Index];
        break;
      }
      case Opcode::JmpR:
        Next = uint64_t(get(Inst.Rb));
        break;
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        Result.Exit = SimExit::Halted;
        Result.ExitValue = get(Inst.Ra);
        Result.FinalData = Data;
        return Result;
      }

      if (Fault) {
        Result.Exit = SimExit::BadMemory;
        break;
      }
      Pc = Next;
    }
    Result.FinalData = Data;
    return Result;
  }

private:
  int64_t get(unsigned R) const {
    return R == reg::Zero ? 0 : Regs[R];
  }

  void set(unsigned R, int64_t Value) {
    if (R != reg::Zero)
      Regs[R] = Value;
  }

  static int64_t shiftLeft(int64_t Value, int64_t Amount) {
    return int64_t(uint64_t(Value) << (uint64_t(Amount) & 63));
  }

  static int64_t shiftRight(int64_t Value, int64_t Amount) {
    return int64_t(uint64_t(Value) >> (uint64_t(Amount) & 63));
  }

  /// Maps a stack-region address to its index in Stack, or returns false.
  /// The stack occupies [SimStackTop - StackWords, SimStackTop).
  bool stackIndex(uint64_t Address, size_t &Index) const {
    uint64_t Base = SimStackTop - Stack.size();
    if (Address < Base || Address >= SimStackTop)
      return false;
    Index = size_t(Address - Base);
    return true;
  }

  bool load(uint64_t Address, int64_t &Value) {
    if (Address >= SimDataBase && Address - SimDataBase < Data.size()) {
      Value = Data[Address - SimDataBase];
      return true;
    }
    size_t Index;
    if (stackIndex(Address, Index)) {
      Value = Stack[Index];
      return true;
    }
    return false;
  }

  bool store(uint64_t Address, int64_t Value) {
    if (Address >= SimDataBase && Address - SimDataBase < Data.size()) {
      Data[Address - SimDataBase] = Value;
      return true;
    }
    size_t Index;
    if (stackIndex(Address, Index)) {
      Stack[Index] = Value;
      return true;
    }
    return false;
  }

  const Image &Img;
  const SimOptions &Opts;
  std::array<int64_t, NumIntRegs> Regs;
  std::vector<int64_t> Stack;
  std::vector<int64_t> Data;
};

} // namespace

SimResult spike::simulate(const Image &Img, const SimOptions &Opts) {
  Machine M(Img, Opts);
  return M.run();
}

SimResult spike::simulateWithArgs(const Image &Img,
                                  const std::vector<int64_t> &Args,
                                  const SimOptions &Opts) {
  Machine M(Img, Opts);
  M.setArgs(Args);
  return M.run();
}
