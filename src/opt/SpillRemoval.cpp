//===- opt/SpillRemoval.cpp - Remove spills around calls ------------------===//

#include "opt/SpillRemoval.h"

#include "isa/Encoding.h"
#include "isa/StackRef.h"

using namespace spike;

namespace {

/// Returns true if \p Inst reads or writes the stack slot \p Slot, or
/// redefines the stack pointer (which changes what the slot means).
bool touchesSlot(const Instruction &Inst, unsigned Sp, int32_t Slot) {
  StackRef Ref = stackRefOf(Inst, Sp);
  if (Ref.Kind == StackRefKind::Slot && Ref.Offset == Slot)
    return true;
  int64_t Delta;
  return spEffectOf(Inst, Sp, Delta) != SpEffect::None;
}

} // namespace

SpillRemovalStats
spike::removeCallSpills(Image &Img, const Program &Prog,
                        const InterprocSummaries &Summaries) {
  SpillRemovalStats Stats;
  unsigned Sp = Prog.Conv.SpReg;
  uint64_t NopWord = encodeInstruction(inst::nop());

  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    const Routine &R = Prog.Routines[RoutineIndex];
    // Quarantined routines have no call blocks by construction; keep the
    // no-touching-quarantined-bytes invariant explicit regardless.
    if (R.Quarantined)
      continue;
    for (uint32_t CallBlock : R.CallBlocks) {
      const BasicBlock &Block = R.Blocks[CallBlock];
      if (Block.Succs.size() != 1)
        continue;
      uint32_t ReturnBlock = Block.Succs[0];
      if (R.Blocks[ReturnBlock].Preds.size() != 1)
        continue;

      RegSet Killed = Summaries.callKilled(Prog, RoutineIndex, CallBlock);

      // Find the latest spill store "stq Rt, k(sp)" in the call block
      // with Rt preserved by the call and untouched until the call.
      int64_t StoreAddr = -1;
      unsigned SpillReg = 0;
      int32_t Slot = 0;
      for (uint64_t Address = Block.Begin; Address + 1 < Block.End;
           ++Address) {
        StackRef Ref = stackRefOf(Prog.Insts[Address], Sp);
        if (Ref.Kind == StackRefKind::Slot && Ref.IsStore &&
            Ref.ValueReg != Sp && !Killed.contains(Ref.ValueReg)) {
          StoreAddr = int64_t(Address);
          SpillReg = Ref.ValueReg;
          Slot = Ref.Offset;
        }
      }
      if (StoreAddr < 0)
        continue;

      // Rt and the slot must be untouched between the store and the call.
      bool Clobbered = false;
      for (uint64_t Address = uint64_t(StoreAddr) + 1;
           Address + 1 < Block.End && !Clobbered; ++Address) {
        const Instruction &Inst = Prog.Insts[Address];
        Clobbered = Inst.defs().contains(SpillReg) ||
                    touchesSlot(Inst, Sp, Slot);
      }
      if (Clobbered)
        continue;

      // Find the reload at the return point.
      const BasicBlock &Return = R.Blocks[ReturnBlock];
      int64_t LoadAddr = -1;
      for (uint64_t Address = Return.Begin; Address < Return.End;
           ++Address) {
        const Instruction &Inst = Prog.Insts[Address];
        StackRef Ref = stackRefOf(Inst, Sp);
        if (Ref.Kind == StackRefKind::Slot && !Ref.IsStore &&
            Ref.Offset == Slot && Ref.ValueReg == SpillReg) {
          LoadAddr = int64_t(Address);
          break;
        }
        if (Inst.defs().contains(SpillReg) || touchesSlot(Inst, Sp, Slot))
          break;
      }
      if (LoadAddr < 0)
        continue;

      // The slot must have no other readers anywhere in the routine:
      // deleting the store must not change what any other load sees.
      bool SlotSharedElsewhere = false;
      for (uint64_t Address = R.Begin;
           Address < R.End && !SlotSharedElsewhere; ++Address) {
        if (int64_t(Address) == StoreAddr || int64_t(Address) == LoadAddr)
          continue;
        StackRef Ref = stackRefOf(Prog.Insts[Address], Sp);
        SlotSharedElsewhere =
            Ref.Kind == StackRefKind::Slot && Ref.Offset == Slot;
      }
      if (SlotSharedElsewhere)
        continue;

      Img.Code[uint64_t(StoreAddr)] = NopWord;
      Img.Code[uint64_t(LoadAddr)] = NopWord;
      ++Stats.RemovedPairs;
      Stats.DeletedAddrs.push_back(uint64_t(StoreAddr));
      Stats.DeletedAddrs.push_back(uint64_t(LoadAddr));
    }
  }
  return Stats;
}
