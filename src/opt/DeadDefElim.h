//===- opt/DeadDefElim.h - Interprocedural dead-def elimination -*- C++-*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes register definitions that are dead under the interprocedural
/// summaries — the Figure 1(a)/(b) optimizations:
///
///   (a) a value computed for return is deleted when live-at-exit shows no
///       caller uses it,
///   (b) an argument set up before a call is deleted when the callee's
///       call-used set shows the callee never reads it.
///
/// Both reduce to one rule: a side-effect-free register definition whose
/// destination is not live immediately after it can be removed.  Liveness
/// is computed per routine with each call replaced by its call-summary
/// instruction and each exit using its live-at-exit set (Section 2).
/// "Impossible in a traditional compiler" because the summaries cross
/// separately compiled modules.
///
/// Deleted instructions are overwritten with nops so that no address in
/// the image changes; a production rewriter would compact afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_DEADDEFELIM_H
#define SPIKE_OPT_DEADDEFELIM_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "psg/Summaries.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Result of one dead-def elimination run.
struct DeadDefStats {
  uint64_t DeletedInsts = 0;

  /// Addresses that were overwritten with nops (for tests/reports).
  std::vector<uint64_t> DeletedAddrs;
};

/// Runs dead-def elimination over every routine of \p Prog, rewriting
/// \p Img in place.  \p Prog must describe \p Img (same code layout) and
/// \p Summaries must come from an analysis of it.
///
/// When \p Records is non-null, the pass attributes its decisions: one
/// "applied" record per deleted definition and one "rejected" record per
/// dead-looking candidate an interprocedural fact saved (a callee that
/// reads the register, a caller that needs it after return, an unknown-
/// code boundary).  The transformation itself is identical either way.
DeadDefStats
eliminateDeadDefs(Image &Img, const Program &Prog,
                  const InterprocSummaries &Summaries,
                  std::vector<telemetry::TransformRecord> *Records = nullptr);

} // namespace spike

#endif // SPIKE_OPT_DEADDEFELIM_H
