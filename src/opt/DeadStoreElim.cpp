//===- opt/DeadStoreElim.cpp - Interprocedural dead-store elim ------------===//

#include "opt/DeadStoreElim.h"

#include "isa/Encoding.h"
#include "slice/DeadStore.h"

using namespace spike;

namespace {

std::string slotName(int32_t SpOffset) {
  return SpOffset < 0 ? "[sp-" + std::to_string(-int64_t(SpOffset)) + "]"
                      : "[sp+" + std::to_string(SpOffset) + "]";
}

} // namespace

DeadStoreStats spike::eliminateDeadStackStores(
    Image &Img, const Program &Prog, const SlotFlowResult &Flow,
    std::vector<telemetry::TransformRecord> *Records) {
  // The slice subsystem owns the dead-store criterion (rule SL012
  // reports exactly what this pass deletes); sharing the candidate
  // finder guarantees the diagnostic and the transformation can never
  // drift apart.
  DeadStoreStats Stats;
  uint64_t NopWord = encodeInstruction(inst::nop());
  for (const DeadStoreCandidate &C : findDeadStackStores(Prog, Flow)) {
    if (C.Dead) {
      Img.Code[C.Address] = NopWord;
      ++Stats.DeletedInsts;
      Stats.DeletedAddrs.push_back(C.Address);
    }
    if (!Records)
      continue;
    telemetry::TransformRecord Record;
    Record.Pass = "dead_store";
    Record.Outcome = C.Dead ? "applied" : "rejected";
    Record.Address = int64_t(C.Address);
    Record.Routine = Prog.Routines[C.RoutineIndex].Name;
    if (C.Dead)
      Record.Detail =
          "slot " + slotName(C.SpOffset) +
          " is not live after the store under the interprocedural slot "
          "dataflow (callee MAY-USE and caller live-at-exit consulted): "
          "rewritten to nop (see: spike-slice --forward " +
          std::to_string(C.Address) + ")";
    else
      Record.Detail =
          "slot " + slotName(C.SpOffset) +
          " may still be read after the store (a later load, a callee, "
          "or a caller reaches it; see: spike-slice --forward " +
          std::to_string(C.Address) + ")";
    Records->push_back(std::move(Record));
  }
  return Stats;
}
