//===- opt/SpillRemoval.h - Remove spills around calls --------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 1(c) optimization: a compiler that could not see the callee
/// spilled a caller-saved register around a call; the interprocedural
/// call-killed set reveals the call does not actually overwrite it, so
/// the spill store/reload pair is deleted.
///
/// Pattern recognized (store in the call's block, reload at the return
/// point):
///
///     stq  Rt, k(sp)
///     ...               (no redef of Rt, no other access to k(sp))
///     jsr  P            [ Rt not in call-killed(P) ]
///     ldq  Rt, k(sp)
///
/// Both memory operations are replaced by nops.  The stack slot is dead
/// afterwards unless other code touches it, which the pass rules out by
/// scanning the routine for other accesses to the same slot.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_SPILLREMOVAL_H
#define SPIKE_OPT_SPILLREMOVAL_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "psg/Summaries.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Result of one spill-removal run.
struct SpillRemovalStats {
  uint64_t RemovedPairs = 0;
  std::vector<uint64_t> DeletedAddrs;
};

/// Removes redundant spills around calls in \p Img (described by \p Prog,
/// analyzed into \p Summaries).
SpillRemovalStats removeCallSpills(Image &Img, const Program &Prog,
                                   const InterprocSummaries &Summaries);

} // namespace spike

#endif // SPIKE_OPT_SPILLREMOVAL_H
