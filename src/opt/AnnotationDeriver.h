//===- opt/AnnotationDeriver.h - Closed-world §3.5 annotations -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives Section 3.5 indirect-call annotations from the program itself.
///
/// The paper proposes having the compiler or linker supply exact
/// register information for indirect call sites.  In a fully linked,
/// closed-world executable the optimizer can derive a sound version on
/// its own: every indirect call target must be an address-taken routine
/// entrance, so
///
///   used    = ∪ call-used(T)     over all address-taken routines T
///   defined = ∩ call-defined(T)
///   killed  = ∪ call-killed(T)
///
/// is a safe summary for every indirect call site, and is usually much
/// sharper than the calling standard's blanket assumption (which must
/// allow any conforming callee).  Deriving, attaching, and re-analyzing
/// tightens live sets and unlocks optimizations across indirect calls.
///
/// Soundness caveat (documented, also the paper's): this relies on the
/// program not synthesizing code addresses from arbitrary arithmetic —
/// the same closed-world assumption the jump-table extraction makes.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_ANNOTATIONDERIVER_H
#define SPIKE_OPT_ANNOTATIONDERIVER_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "psg/Summaries.h"

#include <vector>

namespace spike {

/// Computes one annotation per indirect call site of \p Prog from the
/// address-taken routines' summaries.  Returns an empty vector when the
/// program has no address-taken routines (targets would be unknowable)
/// or no indirect calls.
std::vector<IndirectCallAnnotation>
deriveIndirectCallAnnotations(const Program &Prog,
                              const InterprocSummaries &Summaries);

/// Convenience: analyzes \p Img, derives annotations, and installs them
/// on the image (replacing any existing call annotations).  Returns the
/// number of sites annotated.
size_t annotateIndirectCalls(Image &Img);

} // namespace spike

#endif // SPIKE_OPT_ANNOTATIONDERIVER_H
