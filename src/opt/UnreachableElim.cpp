//===- opt/UnreachableElim.cpp - Dead routine removal ----------------------===//

#include "opt/UnreachableElim.h"

#include "cfg/CallGraph.h"
#include "isa/Encoding.h"

#include <algorithm>
#include <vector>

using namespace spike;

UnreachableElimStats
spike::eliminateUnreachableRoutines(Image &Img, const Program &Prog) {
  UnreachableElimStats Stats;
  size_t Count = Prog.Routines.size();
  if (Count == 0)
    return Stats;

  const std::vector<bool> Reachable = buildCallGraph(Prog).Reachable;

  uint64_t RetWord = encodeInstruction(inst::ret());
  uint64_t NopWord = encodeInstruction(inst::nop());
  for (uint32_t R = 0; R < Count; ++R) {
    if (Reachable[R])
      continue;
    const Routine &Dead = Prog.Routines[R];
    // Quarantined routines are call-graph roots and thus reachable, but
    // guard explicitly: the optimizer must never touch bytes it cannot
    // decode.
    if (Dead.Quarantined)
      continue;
    if (Dead.Begin >= Dead.End)
      continue;
    // Idempotence: a routine already reduced to ret+nops by an earlier
    // round is not a new change.
    bool AlreadyTrivial = Img.Code[Dead.Begin] == RetWord;
    for (uint64_t Address = Dead.Begin + 1;
         AlreadyTrivial && Address < Dead.End; ++Address)
      AlreadyTrivial = Img.Code[Address] == NopWord;
    if (AlreadyTrivial)
      continue;
    Img.Code[Dead.Begin] = RetWord;
    for (uint64_t Address = Dead.Begin + 1; Address < Dead.End; ++Address)
      Img.Code[Address] = NopWord;
    // The jsr_r / jmp_tab instructions any annotation described are gone;
    // a stale annotation on a nop would dangle.
    std::erase_if(Img.CallAnnotations, [&](const auto &A) {
      return A.Address >= Dead.Begin && A.Address < Dead.End;
    });
    std::erase_if(Img.JumpAnnotations, [&](const auto &A) {
      return A.Address >= Dead.Begin && A.Address < Dead.End;
    });
    ++Stats.RoutinesRemoved;
    Stats.InstsRemoved += Dead.End - Dead.Begin;
    Stats.RemovedNames.push_back(Dead.Name);
  }
  return Stats;
}
