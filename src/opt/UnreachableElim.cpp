//===- opt/UnreachableElim.cpp - Dead routine removal ----------------------===//

#include "opt/UnreachableElim.h"

#include "cfg/CallGraph.h"
#include "isa/Encoding.h"

#include <vector>

using namespace spike;

UnreachableElimStats
spike::eliminateUnreachableRoutines(Image &Img, const Program &Prog) {
  UnreachableElimStats Stats;
  size_t Count = Prog.Routines.size();
  if (Count == 0)
    return Stats;

  const std::vector<bool> Reachable = buildCallGraph(Prog).Reachable;

  uint64_t RetWord = encodeInstruction(inst::ret());
  uint64_t NopWord = encodeInstruction(inst::nop());
  for (uint32_t R = 0; R < Count; ++R) {
    if (Reachable[R])
      continue;
    const Routine &Dead = Prog.Routines[R];
    if (Dead.Begin >= Dead.End)
      continue;
    // Idempotence: a routine already reduced to ret+nops by an earlier
    // round is not a new change.
    bool AlreadyTrivial = Img.Code[Dead.Begin] == RetWord;
    for (uint64_t Address = Dead.Begin + 1;
         AlreadyTrivial && Address < Dead.End; ++Address)
      AlreadyTrivial = Img.Code[Address] == NopWord;
    if (AlreadyTrivial)
      continue;
    Img.Code[Dead.Begin] = RetWord;
    for (uint64_t Address = Dead.Begin + 1; Address < Dead.End; ++Address)
      Img.Code[Address] = NopWord;
    ++Stats.RoutinesRemoved;
    Stats.InstsRemoved += Dead.End - Dead.Begin;
    Stats.RemovedNames.push_back(Dead.Name);
  }
  return Stats;
}
