//===- opt/UnreachableElim.h - Dead routine removal -----------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program unreachable-routine elimination: a staple of post-link
/// optimizers (only there is the entire program visible, so "no one can
/// ever call this" becomes provable).
///
/// Roots are the program entry routine and every address-taken routine
/// (an indirect call could reach those).  Everything not reachable from
/// a root through direct calls is dead: its body is rewritten to a
/// single ret followed by nops.  A production rewriter would reclaim the
/// space outright; keeping addresses stable here matches the other
/// passes and keeps the image verifiable.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_UNREACHABLEELIM_H
#define SPIKE_OPT_UNREACHABLEELIM_H

#include "binary/Image.h"
#include "cfg/Program.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Result of one unreachable-elimination run.
struct UnreachableElimStats {
  uint64_t RoutinesRemoved = 0;
  uint64_t InstsRemoved = 0;

  /// Names of the removed routines (for reports and tests).
  std::vector<std::string> RemovedNames;
};

/// Rewrites every unreachable routine of \p Prog in \p Img.
UnreachableElimStats eliminateUnreachableRoutines(Image &Img,
                                                  const Program &Prog);

} // namespace spike

#endif // SPIKE_OPT_UNREACHABLEELIM_H
