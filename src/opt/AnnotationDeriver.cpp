//===- opt/AnnotationDeriver.cpp - Closed-world §3.5 annotations ----------===//

#include "opt/AnnotationDeriver.h"

#include "psg/Analyzer.h"

using namespace spike;

std::vector<IndirectCallAnnotation>
spike::deriveIndirectCallAnnotations(const Program &Prog,
                                     const InterprocSummaries &Summaries) {
  std::vector<IndirectCallAnnotation> Result;

  // Merge the summaries of every possible indirect target: the primary
  // entrance of each address-taken routine.
  bool AnyTarget = false;
  RegSet Used, Killed;
  RegSet Defined = RegSet::allBelow(NumIntRegs);
  for (uint32_t R = 0; R < Prog.Routines.size(); ++R) {
    if (!Prog.Routines[R].AddressTaken)
      continue;
    const RoutineResults &RR = Summaries.Routines[R];
    if (RR.EntrySummaries.empty())
      continue;
    const CallSummary &S = RR.EntrySummaries[0];
    Used |= S.Used;
    Killed |= S.Killed;
    Defined &= S.Defined;
    AnyTarget = true;
  }
  if (!AnyTarget)
    return Result;

  for (uint32_t R = 0; R < Prog.Routines.size(); ++R)
    for (uint32_t Block : Prog.Routines[R].CallBlocks) {
      const BasicBlock &B = Prog.Routines[R].Blocks[Block];
      if (B.Term != TerminatorKind::IndirectCall)
        continue;
      IndirectCallAnnotation Annot;
      Annot.Address = B.End - 1;
      Annot.Used = Used;
      Annot.Defined = Defined;
      Annot.Killed = Killed;
      Result.push_back(Annot);
    }
  return Result;
}

size_t spike::annotateIndirectCalls(Image &Img) {
  // Analyze *without* any pre-existing call annotations so the derived
  // sets come from the conservative baseline, then install the result.
  Image Clean = Img;
  Clean.CallAnnotations.clear();
  AnalysisResult Analysis = analyzeImage(Clean);
  std::vector<IndirectCallAnnotation> Annots =
      deriveIndirectCallAnnotations(Analysis.Prog, Analysis.Summaries);
  Img.CallAnnotations = Annots;
  return Annots.size();
}
