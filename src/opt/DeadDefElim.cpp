//===- opt/DeadDefElim.cpp - Interprocedural dead-def elimination --------===//

#include "opt/DeadDefElim.h"

#include "isa/Encoding.h"
#include "isa/Registers.h"
#include "lint/LintRules.h"

using namespace spike;

DeadDefStats spike::eliminateDeadDefs(
    Image &Img, const Program &Prog, const InterprocSummaries &Summaries,
    std::vector<telemetry::TransformRecord> *Records) {
  // The lint subsystem owns the dead-def criterion (rule SL003 reports
  // exactly what this pass deletes); sharing the candidate finder
  // guarantees the diagnostic and the transformation can never drift
  // apart.
  DeadDefStats Stats;
  uint64_t NopWord = encodeInstruction(inst::nop());
  for (const DeadDefCandidate &C : findDeadDefCandidates(Prog, Summaries)) {
    if (C.Dead) {
      Img.Code[C.Address] = NopWord;
      ++Stats.DeletedInsts;
      Stats.DeletedAddrs.push_back(C.Address);
    }
    if (!Records)
      continue;
    telemetry::TransformRecord Record;
    Record.Pass = "dead_def";
    Record.Outcome = C.Dead ? "applied" : "rejected";
    Record.Address = int64_t(C.Address);
    Record.Routine = Prog.Routines[C.RoutineIndex].Name;
    if (C.Dead)
      Record.Detail =
          std::string(regName(C.Reg)) +
          " is dead after the definition under the interprocedural "
          "summaries (live-at-exit and call-used consulted): rewritten "
          "to nop";
    else
      Record.Detail =
          std::string(regName(C.Reg)) +
          " looks dead intraprocedurally but an interprocedural fact "
          "keeps it live (see: spike-explain --why-dead " +
          regName(C.Reg) + "@" + std::to_string(C.Address) + ")";
    Records->push_back(std::move(Record));
  }
  return Stats;
}
