//===- opt/DeadDefElim.cpp - Interprocedural dead-def elimination --------===//

#include "opt/DeadDefElim.h"

#include "dataflow/Liveness.h"
#include "isa/Encoding.h"

#include <cassert>

using namespace spike;

namespace {

/// Returns true if \p Inst is a pure register computation whose only
/// effect is writing its destination: removable when the destination is
/// dead.  Loads are excluded out of caution (a production optimizer would
/// prove the access safe first); stores, control flow, and halt have
/// side effects.
bool isPureDef(const Instruction &Inst) {
  switch (opcodeInfo(Inst.Op).Format) {
  case OperandFormat::RRR:
  case OperandFormat::RRI:
  case OperandFormat::RI:
  case OperandFormat::RR:
    return true;
  default:
    return false;
  }
}

} // namespace

DeadDefStats spike::eliminateDeadDefs(Image &Img, const Program &Prog,
                                      const InterprocSummaries &Summaries) {
  DeadDefStats Stats;
  RegSet AllRegs = RegSet::allBelow(NumIntRegs);
  uint64_t NopWord = encodeInstruction(inst::nop());

  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    const Routine &R = Prog.Routines[RoutineIndex];

    LivenessResult Live = solveLiveness(
        R,
        [&](uint32_t BlockIndex) {
          return Summaries.callEffect(Prog, RoutineIndex, BlockIndex);
        },
        [&](uint32_t BlockIndex) {
          return Summaries.liveAtExitOfBlock(Prog, RoutineIndex,
                                             BlockIndex);
        },
        [&](uint32_t BlockIndex) {
          return Prog.jumpTargetLive(R.Blocks[BlockIndex].End - 1);
        });

    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      const BasicBlock &Block = R.Blocks[BlockIndex];
      CallEffect Effect;
      const CallEffect *EffectPtr = nullptr;
      if (Block.endsWithCall()) {
        Effect = Summaries.callEffect(Prog, RoutineIndex, BlockIndex);
        EffectPtr = &Effect;
      }
      std::vector<RegSet> LiveBefore = liveBeforeEachInst(
          Prog, R, BlockIndex, Live.LiveOut[BlockIndex], EffectPtr);

      for (uint64_t Offset = 0; Offset < Block.size(); ++Offset) {
        uint64_t Address = Block.Begin + Offset;
        const Instruction &Inst = Prog.Insts[Address];
        if (!isPureDef(Inst))
          continue;
        RegSet Defs = Inst.defs();
        if (Defs.empty())
          continue; // Write to the zero register: already a nop.
        RegSet LiveAfter = Offset + 1 < Block.size()
                               ? LiveBefore[Offset + 1]
                               : Live.LiveOut[BlockIndex];
        if (LiveAfter.intersects(Defs))
          continue;
        Img.Code[Address] = NopWord;
        ++Stats.DeletedInsts;
        Stats.DeletedAddrs.push_back(Address);
      }
    }
  }
  return Stats;
}
