//===- opt/DeadDefElim.cpp - Interprocedural dead-def elimination --------===//

#include "opt/DeadDefElim.h"

#include "isa/Encoding.h"
#include "lint/LintRules.h"

using namespace spike;

DeadDefStats spike::eliminateDeadDefs(Image &Img, const Program &Prog,
                                      const InterprocSummaries &Summaries) {
  // The lint subsystem owns the dead-def criterion (rule SL003 reports
  // exactly what this pass deletes); sharing findDeadDefs guarantees the
  // diagnostic and the transformation can never drift apart.
  DeadDefStats Stats;
  uint64_t NopWord = encodeInstruction(inst::nop());
  for (uint64_t Address : findDeadDefs(Prog, Summaries)) {
    Img.Code[Address] = NopWord;
    ++Stats.DeletedInsts;
    Stats.DeletedAddrs.push_back(Address);
  }
  return Stats;
}
