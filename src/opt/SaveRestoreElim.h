//===- opt/SaveRestoreElim.h - Callee-saved reallocation ------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 1(d) optimization: a value the compiler placed in a
/// callee-saved register Rs (forcing a save and restore around the whole
/// routine) is moved to a caller-saved register Rt that the summaries
/// prove no call in the routine kills or reads, and the save/restore pair
/// is deleted.  Per [Cohn96], call overhead including callee-saved
/// save/restores can reach 16% of execution time in large applications,
/// so this is the highest-value use of the call-killed summaries.
///
/// Conditions checked for each saved register Rs and candidate Rt:
///   - Rs is proven saved-and-restored (cfg/SaveRestore),
///   - Rt is a calling-standard temporary, never used or defined anywhere
///     in the routine,
///   - Rt is not in call-killed and not in call-used of any call in the
///     routine (so no callee reads or writes it),
///   - the routine has no unresolved indirect jumps,
///   - Rs's stack slot is accessed only by the save/restore instructions.
///
/// The rewrite renames every occurrence of Rs in the routine to Rt and
/// replaces the save/restore memory operations with nops.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_SAVERESTOREELIM_H
#define SPIKE_OPT_SAVERESTOREELIM_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "cfg/SaveRestore.h"
#include "psg/Summaries.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Result of one save/restore-elimination run.
struct SaveRestoreElimStats {
  uint64_t EliminatedRegs = 0;  ///< Callee-saved registers reallocated.
  uint64_t DeletedInsts = 0;    ///< Save/restore memory ops removed.
  uint64_t RenamedInsts = 0;    ///< Instructions rewritten Rs -> Rt.
};

/// Runs the reallocation over every routine of \p Prog, rewriting \p Img.
SaveRestoreElimStats
eliminateSaveRestores(Image &Img, const Program &Prog,
                      const InterprocSummaries &Summaries);

} // namespace spike

#endif // SPIKE_OPT_SAVERESTOREELIM_H
