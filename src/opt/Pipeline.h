//===- opt/Pipeline.h - Analyze-optimize driver ---------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full Spike-style optimize loop on an image: interprocedural
/// analysis, then the three summary-consuming optimizations of Figure 1,
/// repeated until a fixpoint (deleting one routine's dead code can make
/// summaries of its callers/callees sharper).
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_PIPELINE_H
#define SPIKE_OPT_PIPELINE_H

#include "binary/Image.h"
#include "isa/CallingConv.h"
#include "opt/DeadDefElim.h"
#include "opt/SaveRestoreElim.h"
#include "opt/SpillRemoval.h"
#include "opt/UnreachableElim.h"

namespace spike {

/// Cumulative statistics over all pipeline rounds.
struct PipelineStats {
  uint64_t UnreachableRoutinesRemoved = 0;
  uint64_t UnreachableInstsRemoved = 0;
  uint64_t DeadDefsDeleted = 0;
  uint64_t SpillPairsRemoved = 0;
  uint64_t SaveRestoreRegsEliminated = 0;
  uint64_t SaveRestoreInstsDeleted = 0;
  unsigned Rounds = 0;

  uint64_t totalDeleted() const {
    return DeadDefsDeleted + 2 * SpillPairsRemoved +
           SaveRestoreInstsDeleted + UnreachableInstsRemoved;
  }
};

/// Optimizes \p Img in place.  Runs at most \p MaxRounds
/// analyze-transform rounds, stopping early once a round changes nothing.
PipelineStats optimizeImage(Image &Img, const CallingConv &Conv = {},
                            unsigned MaxRounds = 3);

} // namespace spike

#endif // SPIKE_OPT_PIPELINE_H
