//===- opt/Pipeline.h - Analyze-optimize driver ---------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full Spike-style optimize loop on an image: interprocedural
/// analysis, then the three summary-consuming optimizations of Figure 1,
/// repeated until a fixpoint (deleting one routine's dead code can make
/// summaries of its callers/callees sharper).
///
/// The loop can audit itself (PipelineOptions): before the first round it
/// lints the image, and after every round it lints again and records any
/// finding the round introduced — a transformation that creates a new
/// warning or error in a routine is a transformation that broke something.
/// It can also cross-check each round's PSG summaries against the CFG
/// two-phase reference.  Both checks cost extra analysis passes and are
/// off by default.
///
/// Rounds are transactional: the driver snapshots the image before each
/// round, and if the round's output introduces a strict validation
/// finding the input did not have, or no longer survives a serialize /
/// re-parse round trip, the whole round is rolled back and the loop
/// stops.  A rolled-back round is recorded in PipelineStats (the stats it
/// accumulated are discarded with it), so a transformation bug degrades
/// into a refused optimization, never a corrupted output image.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_PIPELINE_H
#define SPIKE_OPT_PIPELINE_H

#include "binary/Image.h"
#include "isa/CallingConv.h"
#include "opt/DeadDefElim.h"
#include "opt/DeadStoreElim.h"
#include "opt/SaveRestoreElim.h"
#include "opt/SpillRemoval.h"
#include "opt/UnreachableElim.h"
#include "support/Budget.h"
#include "telemetry/Telemetry.h"

#include <functional>
#include <string>
#include <vector>

namespace spike {

/// Knobs for one optimizeImage run.
struct PipelineOptions {
  /// Maximum analyze-transform rounds; the loop stops early once a round
  /// changes nothing.
  unsigned MaxRounds = 3;

  /// Lint the image before the first round and after every round, and
  /// count findings (Warning or stronger, keyed by rule + routine) that a
  /// round introduced.  Their renderings land in PipelineStats::LintReports.
  bool LintSelfCheck = false;

  /// After each round, cross-check the round's PSG summaries against the
  /// CFG two-phase reference; mismatches are counted and reported.  Slow —
  /// meant for tests and fixtures, not production-size images.
  bool CrossCheck = false;

  /// Fault-injection seam: if set, runs on the round's output image after
  /// the passes and before the transactional commit check (which then
  /// always runs).  Tests and the fuzzer use it to prove that a round
  /// producing a corrupt image rolls back instead of escaping.
  std::function<void(Image &, unsigned Round)> PostRoundMutator;

  /// Worker lanes for every analysis the pipeline runs (the --jobs
  /// flag).  The optimized image, stats, and telemetry counters are
  /// identical for every value.
  unsigned Jobs = 1;

  /// Tag every transformation — and every rejected candidate — with the
  /// summary facts that justified the decision.  Records land in
  /// PipelineStats::Transforms and, when a telemetry session is active,
  /// in the run report's "transforms" array (queryable via
  /// `spike-explain --why-transformed`).  Off by default; the
  /// transformations themselves are identical either way.
  bool AttributeTransforms = false;

  /// Resource budget for every analysis the pipeline runs, polled by the
  /// solvers at worklist-pop granularity and by the driver between
  /// passes.  All-zero = ungoverned.  A budget blow mid-round rolls the
  /// round back and retries it with the blown SCC group's routines
  /// degraded to Section 3.5 unknowable summaries; when even a fully
  /// degraded analysis cannot fit, the loop stops and the last committed
  /// (valid) image is returned with StoppedOnBudget set.  Only
  /// cancellation escapes as a BudgetBlownError exception — use
  /// optimizeImageGoverned for a structured Status instead.
  BudgetOptions Budget;

  /// Cooperative cancellation observed by every governor poll.
  CancellationToken *Cancel = nullptr;
};

/// Cumulative statistics over all pipeline rounds.
struct PipelineStats {
  uint64_t UnreachableRoutinesRemoved = 0;
  uint64_t UnreachableInstsRemoved = 0;
  uint64_t DeadDefsDeleted = 0;
  uint64_t DeadStoresDeleted = 0;
  uint64_t SpillPairsRemoved = 0;
  uint64_t SaveRestoreRegsEliminated = 0;
  uint64_t SaveRestoreInstsDeleted = 0;
  unsigned Rounds = 0;

  /// Rounds whose output failed post-round validation or the serialize /
  /// re-parse round trip and were rolled back to the round's input image —
  /// zero on a healthy run.  The reason lands in LintReports.
  unsigned RoundsRolledBack = 0;

  /// Findings the optimizer introduced (LintSelfCheck) — zero on a
  /// healthy run.
  uint64_t LintRegressions = 0;

  /// Summary mismatches against the reference analysis (CrossCheck) —
  /// zero on a healthy run.
  uint64_t CrossCheckMismatches = 0;

  /// Rendered diagnostics for every regression / mismatch, in the order
  /// they were detected.
  std::vector<std::string> LintReports;

  /// Cost and outcome of one analyze-transform round.
  struct RoundRecord {
    /// Wall-clock seconds the whole round took, including its analyses
    /// and the transactional commit check.
    double Seconds = 0;

    /// Largest MemoryTracker peak across the round's analysis runs.
    uint64_t AnalysisPeakBytes = 0;

    /// Deletions/eliminations the round performed (before any rollback).
    uint64_t Changes = 0;

    /// True if the round's output failed verification and was discarded.
    bool RolledBack = false;
  };

  /// One record per round actually executed, including rolled-back ones.
  std::vector<RoundRecord> PerRound;

  /// Transformation attributions (AttributeTransforms): what each pass
  /// did or declined to do, and the summary facts behind the verdict.
  /// Records of rolled-back rounds are discarded with the round.
  std::vector<telemetry::TransformRecord> Transforms;

  /// Routines the CFG builder quarantined in the last completed round's
  /// analysis — code the optimizer refuses to touch (Section 3.5).
  /// Includes the budget-degraded ones below (they share the bit).
  uint64_t QuarantinedRoutines = 0;

  /// Routines analyzed with Section 3.5 unknowable summaries in the last
  /// completed round because their SCC group blew the analysis budget.
  uint64_t BudgetDegradedRoutines = 0;

  /// Round attempts re-run after a budget blow forced degradation.
  unsigned BudgetRetries = 0;

  /// Dead-store passes skipped because the slot dataflow blew the budget
  /// (skipping an optimization is always sound).
  unsigned SlotFlowSkips = 0;

  /// True if the loop stopped because the analysis budget could not be
  /// met even with every routine degraded; the returned image is the
  /// last committed (valid) one.  The reason lands in LintReports.
  bool StoppedOnBudget = false;

  uint64_t totalDeleted() const {
    return DeadDefsDeleted + DeadStoresDeleted + 2 * SpillPairsRemoved +
           SaveRestoreInstsDeleted + UnreachableInstsRemoved;
  }

  /// True if every enabled self-check passed and no round was rolled
  /// back.
  bool clean() const {
    return RoundsRolledBack == 0 && LintRegressions == 0 &&
           CrossCheckMismatches == 0;
  }
};

/// Optimizes \p Img in place.
PipelineStats optimizeImage(Image &Img, const CallingConv &Conv,
                            const PipelineOptions &Opts);

/// Convenience overload with default options.
PipelineStats optimizeImage(Image &Img, const CallingConv &Conv = {},
                            unsigned MaxRounds = 3);

/// optimizeImage under \p Budget and \p Token, with cancellation (the
/// only budget condition optimizeImage raises as an exception) converted
/// to a structured Status.  Injected environment faults (std::bad_alloc,
/// faultinject::TaskFault) still propagate to the caller's handler.
Expected<PipelineStats> optimizeImageGoverned(Image &Img,
                                              const CallingConv &Conv,
                                              PipelineOptions Opts,
                                              const BudgetOptions &Budget,
                                              CancellationToken *Token =
                                                  nullptr);

} // namespace spike

#endif // SPIKE_OPT_PIPELINE_H
