//===- opt/SaveRestoreElim.cpp - Callee-saved reallocation ----------------===//

#include "opt/SaveRestoreElim.h"

#include "cfg/CallGraph.h"
#include "dataflow/Liveness.h"
#include "isa/Encoding.h"
#include "isa/StackRef.h"

#include <algorithm>
#include <vector>
#include <cassert>

using namespace spike;

namespace {

/// Returns true if address \p Address is in \p Addrs.
bool containsAddr(const std::vector<uint64_t> &Addrs, uint64_t Address) {
  return std::find(Addrs.begin(), Addrs.end(), Address) != Addrs.end();
}

/// Checks that, ignoring the save/restore instructions themselves, no
/// path from an entrance can read \p Reg before writing it (otherwise the
/// routine consumes the caller's value of Reg and renaming would break
/// it).  Modelled as a liveness query with empty live-at-exit.
bool usesIncomingValue(const Program &Prog, uint32_t RoutineIndex,
                       const InterprocSummaries &Summaries,
                       const SavedRegInfo &Detail) {
  const Routine &R = Prog.Routines[RoutineIndex];
  unsigned Reg = Detail.Reg;

  // Recompute per-block DEF/UBD for Reg with the save/restore removed.
  std::vector<RegSet> Def(R.Blocks.size()), Ubd(R.Blocks.size());
  for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
       ++BlockIndex) {
    const BasicBlock &Block = R.Blocks[BlockIndex];
    RegSet D, U;
    for (uint64_t Address = Block.Begin; Address < Block.End; ++Address) {
      if (containsAddr(Detail.SaveAddrs, Address) ||
          containsAddr(Detail.RestoreAddrs, Address))
        continue;
      const Instruction &Inst = Prog.Insts[Address];
      bool IsCallTerminator =
          Address == Block.End - 1 && opcodeInfo(Inst.Op).IsCall;
      U |= Inst.uses() - D;
      if (!IsCallTerminator)
        D |= Inst.defs();
    }
    Def[BlockIndex] = D;
    Ubd[BlockIndex] = U;
  }

  // Copy the routine with the adjusted block sets, then ask liveness
  // whether Reg is live at any entrance.
  Routine Adjusted = R;
  for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
       ++BlockIndex) {
    Adjusted.Blocks[BlockIndex].Def = Def[BlockIndex];
    Adjusted.Blocks[BlockIndex].Ubd = Ubd[BlockIndex];
  }
  LivenessResult Live = solveLiveness(
      Adjusted,
      [&](uint32_t BlockIndex) {
        return Summaries.callEffect(Prog, RoutineIndex, BlockIndex);
      },
      [&](uint32_t) { return RegSet(); }, RegSet::allBelow(NumIntRegs));

  for (uint32_t EntryBlock : R.EntryBlocks)
    if (Live.LiveIn[EntryBlock].contains(Reg))
      return true;
  return false;
}

/// Rewrites register \p From to \p To in \p Inst.
Instruction renameReg(Instruction Inst, unsigned From, unsigned To) {
  if (Inst.Ra == From)
    Inst.Ra = uint8_t(To);
  if (Inst.Rb == From)
    Inst.Rb = uint8_t(To);
  if (Inst.Rc == From)
    Inst.Rc = uint8_t(To);
  return Inst;
}

} // namespace

SaveRestoreElimStats
spike::eliminateSaveRestores(Image &Img, const Program &Prog,
                             const InterprocSummaries &Summaries) {
  SaveRestoreElimStats Stats;
  unsigned Sp = Prog.Conv.SpReg;
  uint64_t NopWord = encodeInstruction(inst::nop());

  // Every safety check below is made against the summaries of the
  // *pre-rewrite* program.  A rewritten routine clobbers its replacement
  // temporary unsaved, which grows its (transitive) call-killed set; a
  // caller that committed the same temporary for a value live across a
  // call would be broken retroactively.  Choosing each replacement
  // register at most once per run keeps the pre-rewrite summaries valid
  // for every check: no new definitions of any *other* register appear
  // anywhere.  (The pipeline re-analyzes between rounds, so later rounds
  // get a fresh budget with updated summaries.)
  RegSet GlobalReplacements;
  CallGraph Graph = buildCallGraph(Prog);

  for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
       ++RoutineIndex) {
    const Routine &R = Prog.Routines[RoutineIndex];
    // Never rewrite quarantined bytes (the decoded view is a placeholder,
    // not the real instructions).  The UnresolvedJump terminator of the
    // synthetic block would skip them below anyway; be explicit.
    if (R.Quarantined)
      continue;
    // Reallocating inside a recursive routine is unsafe: the value would
    // live across a call that re-enters the routine, and the rewrite
    // itself adds the clobber that breaks its own safety premise.
    if (Graph.InCycle[RoutineIndex])
      continue;

    bool HasUnknownCode = false;
    for (const BasicBlock &Block : R.Blocks)
      HasUnknownCode |= Block.Term == TerminatorKind::UnresolvedJump;
    if (HasUnknownCode)
      continue;

    SaveRestoreInfo Info = analyzeSaveRestore(Prog, R);
    if (Info.Details.empty())
      continue;

    // Registers touched by the routine itself or by any call it makes,
    // plus everything live at any entrance: a register live-at-entry is
    // one some (transitive) caller expects to survive this routine, so
    // clobbering it unsaved would be wrong — this is Figure 1(d)'s use
    // of the phase 2 live sets.
    RegSet Blocked;
    for (const RegSet &Live :
         Summaries.Routines[RoutineIndex].LiveAtEntry)
      Blocked |= Live;
    for (uint64_t Address = R.Begin; Address < R.End; ++Address)
      Blocked |= Prog.Insts[Address].uses() | Prog.Insts[Address].defs();
    RegSet KilledByCalls;
    for (uint32_t CallBlock : R.CallBlocks) {
      KilledByCalls |= Summaries.callKilled(Prog, RoutineIndex, CallBlock);
      Blocked |=
          Summaries.callEffect(Prog, RoutineIndex, CallBlock).Used;
    }
    Blocked |= KilledByCalls;

    for (const SavedRegInfo &Detail : Info.Details) {
      // If some callee may overwrite the register mid-routine, the
      // original code observed the clobbered value between that call and
      // the restore; renaming to a preserved temporary would change it.
      if (KilledByCalls.contains(Detail.Reg))
        continue;

      // The slot must belong exclusively to this save/restore pair.
      bool SlotShared = false;
      for (uint64_t Address = R.Begin; Address < R.End && !SlotShared;
           ++Address) {
        if (containsAddr(Detail.SaveAddrs, Address) ||
            containsAddr(Detail.RestoreAddrs, Address))
          continue;
        StackRef Ref = stackRefOf(Prog.Insts[Address], Sp);
        SlotShared =
            Ref.Kind == StackRefKind::Slot && Ref.Offset == Detail.Slot;
      }
      if (SlotShared)
        continue;

      if (usesIncomingValue(Prog, RoutineIndex, Summaries, Detail))
        continue;

      // Pick a free temporary no callee touches.
      unsigned Replacement = NumIntRegs;
      for (unsigned Candidate : Prog.Conv.Temporaries) {
        if (Blocked.contains(Candidate) ||
            GlobalReplacements.contains(Candidate))
          continue;
        Replacement = Candidate;
        break;
      }
      if (Replacement == NumIntRegs)
        continue;
      Blocked.insert(Replacement);
      GlobalReplacements.insert(Replacement);

      // Rewrite: nop out the save/restore, rename Rs -> Rt elsewhere.
      for (uint64_t Address : Detail.SaveAddrs)
        Img.Code[Address] = NopWord;
      for (uint64_t Address : Detail.RestoreAddrs)
        Img.Code[Address] = NopWord;
      Stats.DeletedInsts +=
          Detail.SaveAddrs.size() + Detail.RestoreAddrs.size();

      for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
        if (containsAddr(Detail.SaveAddrs, Address) ||
            containsAddr(Detail.RestoreAddrs, Address))
          continue;
        // Decode the *current* image word: an earlier reallocation in
        // this routine may already have rewritten this instruction, and
        // re-encoding the stale decoded form would undo it.
        std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
        assert(Inst && "image corrupted during rewrite");
        if (!Inst->uses().contains(Detail.Reg) &&
            !Inst->defs().contains(Detail.Reg))
          continue;
        Instruction Renamed = renameReg(*Inst, Detail.Reg, Replacement);
        Img.Code[Address] = encodeInstruction(Renamed);
        ++Stats.RenamedInsts;
      }
      ++Stats.EliminatedRegs;
    }
  }
  return Stats;
}
