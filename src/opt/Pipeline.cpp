//===- opt/Pipeline.cpp - Analyze-optimize driver --------------------------===//

#include "opt/Pipeline.h"

#include "psg/Analyzer.h"

using namespace spike;

PipelineStats spike::optimizeImage(Image &Img, const CallingConv &Conv,
                                   unsigned MaxRounds) {
  PipelineStats Stats;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    // Every pass mutates the image, so each one runs against a fresh
    // analysis (the decoded Program must describe the current bytes).
    uint64_t ChangesThisRound = 0;

    {
      // Dead routines first: everything after has less code to chew on.
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      UnreachableElimStats Unreachable =
          eliminateUnreachableRoutines(Img, Analysis.Prog);
      Stats.UnreachableRoutinesRemoved += Unreachable.RoutinesRemoved;
      Stats.UnreachableInstsRemoved += Unreachable.InstsRemoved;
      ChangesThisRound += Unreachable.RoutinesRemoved;
      SaveRestoreElimStats SaveRestores =
          eliminateSaveRestores(Img, Analysis.Prog, Analysis.Summaries);
      Stats.SaveRestoreRegsEliminated += SaveRestores.EliminatedRegs;
      Stats.SaveRestoreInstsDeleted += SaveRestores.DeletedInsts;
      ChangesThisRound += SaveRestores.EliminatedRegs;
    }

    {
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      SpillRemovalStats Spills =
          removeCallSpills(Img, Analysis.Prog, Analysis.Summaries);
      Stats.SpillPairsRemoved += Spills.RemovedPairs;
      ChangesThisRound += Spills.RemovedPairs;
    }

    {
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      DeadDefStats DeadDefs =
          eliminateDeadDefs(Img, Analysis.Prog, Analysis.Summaries);
      Stats.DeadDefsDeleted += DeadDefs.DeletedInsts;
      ChangesThisRound += DeadDefs.DeletedInsts;
    }

    ++Stats.Rounds;
    if (ChangesThisRound == 0)
      break;
  }
  return Stats;
}
