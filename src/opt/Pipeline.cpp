//===- opt/Pipeline.cpp - Analyze-optimize driver --------------------------===//

#include "opt/Pipeline.h"

#include "lint/Linter.h"
#include "psg/Analyzer.h"

using namespace spike;

namespace {

/// Lint configuration for the self-check: reachability rules are skipped
/// because the optimizer legitimately rewrites unreachable routines to
/// ret + nops (their trailing blocks change shape), and the baseline-vs-
/// after diff at Warning severity handles the rest.
LintOptions selfCheckOptions() {
  LintOptions Opts;
  Opts.disableRule(RuleId::UnreachableRoutine);
  Opts.disableRule(RuleId::UnreachableBlock);
  return Opts;
}

} // namespace

PipelineStats spike::optimizeImage(Image &Img, const CallingConv &Conv,
                                   const PipelineOptions &Opts) {
  PipelineStats Stats;

  LintResult Baseline;
  if (Opts.LintSelfCheck)
    Baseline = lintImage(Img, Conv, selfCheckOptions());

  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    // Every pass mutates the image, so each one runs against a fresh
    // analysis (the decoded Program must describe the current bytes).
    uint64_t ChangesThisRound = 0;

    {
      // Dead routines first: everything after has less code to chew on.
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      UnreachableElimStats Unreachable =
          eliminateUnreachableRoutines(Img, Analysis.Prog);
      Stats.UnreachableRoutinesRemoved += Unreachable.RoutinesRemoved;
      Stats.UnreachableInstsRemoved += Unreachable.InstsRemoved;
      ChangesThisRound += Unreachable.RoutinesRemoved;
      SaveRestoreElimStats SaveRestores =
          eliminateSaveRestores(Img, Analysis.Prog, Analysis.Summaries);
      Stats.SaveRestoreRegsEliminated += SaveRestores.EliminatedRegs;
      Stats.SaveRestoreInstsDeleted += SaveRestores.DeletedInsts;
      ChangesThisRound += SaveRestores.EliminatedRegs;
    }

    {
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      SpillRemovalStats Spills =
          removeCallSpills(Img, Analysis.Prog, Analysis.Summaries);
      Stats.SpillPairsRemoved += Spills.RemovedPairs;
      ChangesThisRound += Spills.RemovedPairs;
    }

    {
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      DeadDefStats DeadDefs =
          eliminateDeadDefs(Img, Analysis.Prog, Analysis.Summaries);
      Stats.DeadDefsDeleted += DeadDefs.DeletedInsts;
      ChangesThisRound += DeadDefs.DeletedInsts;
    }

    ++Stats.Rounds;

    if (Opts.LintSelfCheck || Opts.CrossCheck) {
      AnalysisResult Analysis = analyzeImage(Img, Conv);
      if (Opts.LintSelfCheck) {
        LintResult After =
            lintAnalysis(Img, Analysis, selfCheckOptions());
        for (const Diagnostic &D :
             newDiagnostics(Baseline, After, Severity::Warning)) {
          ++Stats.LintRegressions;
          Stats.LintReports.push_back(
              "round " + std::to_string(Round + 1) + ": " + D.str());
        }
      }
      if (Opts.CrossCheck) {
        for (const Diagnostic &D : crossCheckSummaries(Analysis)) {
          ++Stats.CrossCheckMismatches;
          Stats.LintReports.push_back(
              "round " + std::to_string(Round + 1) + ": " + D.str());
        }
      }
    }

    if (ChangesThisRound == 0)
      break;
  }
  return Stats;
}

PipelineStats spike::optimizeImage(Image &Img, const CallingConv &Conv,
                                   unsigned MaxRounds) {
  PipelineOptions Opts;
  Opts.MaxRounds = MaxRounds;
  return optimizeImage(Img, Conv, Opts);
}
