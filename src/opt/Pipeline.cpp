//===- opt/Pipeline.cpp - Analyze-optimize driver --------------------------===//

#include "opt/Pipeline.h"

#include "binary/Validator.h"
#include "lint/Linter.h"
#include "psg/Analyzer.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>

#include <set>
#include <utility>

using namespace spike;

namespace {

/// Lint configuration for the self-check: reachability rules are skipped
/// because the optimizer legitimately rewrites unreachable routines to
/// ret + nops (their trailing blocks change shape), and the baseline-vs-
/// after diff at Warning severity handles the rest.
LintOptions selfCheckOptions() {
  LintOptions Opts;
  Opts.disableRule(RuleId::UnreachableRoutine);
  Opts.disableRule(RuleId::UnreachableBlock);
  return Opts;
}

/// The (code, routine) keys of \p Report's strict findings.  Rollback
/// compares keys rather than whole reports: transforms legitimately move
/// findings around (addresses change), and the input image's pre-existing
/// defects must not be blamed on the optimizer.  Advisory findings are
/// excluded — they do not fail verification.
std::set<std::pair<unsigned, std::string>>
strictKeys(const ValidationReport &Report) {
  std::set<std::pair<unsigned, std::string>> Keys;
  for (const ValidationFinding &F : Report.Findings)
    if (F.Strict)
      Keys.insert({unsigned(F.Code), F.RoutineName});
  return Keys;
}

/// Returns the reason the round's output image is unacceptable, or "" if
/// it is fine: no strict validation finding beyond \p BaselineDefects,
/// and the image survives a serialize / re-parse round trip bit-for-bit.
std::string
roundFailure(const Image &Img,
             const std::set<std::pair<unsigned, std::string>>
                 &BaselineDefects) {
  for (const ValidationFinding &F : validateImage(Img).Findings) {
    if (!F.Strict)
      continue;
    if (!BaselineDefects.count({unsigned(F.Code), F.RoutineName}))
      return "output image fails validation: " + F.Message;
  }
  Expected<Image> Reloaded = loadImage(writeImage(Img));
  if (!Reloaded)
    return "output image fails re-parse: " + Reloaded.error().Message;
  if (!(*Reloaded == Img))
    return "output image does not survive a serialize/re-parse round "
           "trip";
  return "";
}

} // namespace

PipelineStats spike::optimizeImage(Image &Img, const CallingConv &Conv,
                                   const PipelineOptions &Opts) {
  telemetry::Span PipelineSpan("opt.pipeline");
  PipelineStats Stats;
  AnalysisOptions AOpts;
  AOpts.Jobs = Opts.Jobs;

  // One governor for the whole loop; analyzeImage re-arms the deadline
  // per analysis, so --deadline-ms bounds each analysis, not the run.
  ResourceGovernor Gov(Opts.Budget, /*Mem=*/nullptr, Opts.Cancel);
  ResourceGovernor *GovPtr = Gov.enabled() ? &Gov : nullptr;
  AOpts.Governor = GovPtr;

  // Routines degraded to Section 3.5 unknowable summaries after budget
  // blows.  The set persists across rounds — a retried round must not
  // rediscover the same blow — and only ever grows, which with the
  // degrade-everything escalation bounds the retries.
  std::vector<std::string> Degraded;
  bool TriedAll = false;
  BudgetVerdict FirstBlow = BudgetVerdict::Ok;
  std::string FirstBlowPhase;

  LintResult Baseline;
  if (Opts.LintSelfCheck) {
    LintOptions BaselineOpts = selfCheckOptions();
    BaselineOpts.Jobs = Opts.Jobs;
    Baseline = lintImage(Img, Conv, BaselineOpts);
  }

  // Defects the *input* already had are not the optimizer's fault; only
  // strict findings beyond this set roll a round back.
  const std::set<std::pair<unsigned, std::string>> BaselineDefects =
      strictKeys(validateImage(Img));

  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    // The round's transaction boundary: a validation failure or a budget
    // blow mid-round restores both and discards the partial work.
    Image Snapshot = Img;
    PipelineStats Entering = Stats;
    unsigned RetriesThisRound = 0;

    // One analyze-transform round against the current Img/Stats.
    // Returns true when the loop should run another round.  Every pass
    // mutates the image, so each one runs against a fresh analysis (the
    // decoded Program must describe the current bytes).
    auto RunRound = [&]() -> bool {
    uint64_t ChangesThisRound = 0;
    telemetry::Span RoundSpan("opt.round");
    Stopwatch RoundTimer;
    RoundTimer.start();
    uint64_t RoundPeakBytes = 0;
    uint64_t RoundQuarantined = 0;
    uint64_t RoundBudgetDegraded = 0;

    {
      // Dead routines first: everything after has less code to chew on.
      AnalysisResult Analysis = analyzeImage(Img, Conv, AOpts);
      RoundPeakBytes = std::max(RoundPeakBytes, Analysis.Memory.peakBytes());
      RoundQuarantined = Analysis.Prog.numQuarantined();
      RoundBudgetDegraded = Analysis.Prog.numBudgetDegraded();
      {
        telemetry::Span PassSpan("pass.unreachable");
        UnreachableElimStats Unreachable =
            eliminateUnreachableRoutines(Img, Analysis.Prog);
        Stats.UnreachableRoutinesRemoved += Unreachable.RoutinesRemoved;
        Stats.UnreachableInstsRemoved += Unreachable.InstsRemoved;
        ChangesThisRound += Unreachable.RoutinesRemoved;
        if (Opts.AttributeTransforms)
          for (const std::string &Name : Unreachable.RemovedNames) {
            telemetry::TransformRecord Record;
            Record.Pass = "unreachable";
            Record.Outcome = "applied";
            Record.Routine = Name;
            Record.Detail =
                "no call path reaches the routine from the program entry "
                "or any address-taken routine: body rewritten to ret/nops";
            Stats.Transforms.push_back(std::move(Record));
          }
      }
      {
        telemetry::Span PassSpan("pass.save_restore");
        SaveRestoreElimStats SaveRestores =
            eliminateSaveRestores(Img, Analysis.Prog, Analysis.Summaries);
        Stats.SaveRestoreRegsEliminated += SaveRestores.EliminatedRegs;
        Stats.SaveRestoreInstsDeleted += SaveRestores.DeletedInsts;
        ChangesThisRound += SaveRestores.EliminatedRegs;
        if (Opts.AttributeTransforms && SaveRestores.EliminatedRegs != 0) {
          telemetry::TransformRecord Record;
          Record.Pass = "save_restore";
          Record.Outcome = "applied";
          Record.Detail =
              std::to_string(SaveRestores.EliminatedRegs) +
              " callee-saved register(s) reallocated, " +
              std::to_string(SaveRestores.DeletedInsts) +
              " save/restore instruction(s) deleted: the Section 3.4 "
              "sets show the saves are redundant";
          Stats.Transforms.push_back(std::move(Record));
        }
      }
    }

    if (GovPtr)
      GovPtr->pollOrThrow("opt.pass.spill_removal");
    {
      AnalysisResult Analysis = analyzeImage(Img, Conv, AOpts);
      RoundPeakBytes = std::max(RoundPeakBytes, Analysis.Memory.peakBytes());
      telemetry::Span PassSpan("pass.spill_removal");
      SpillRemovalStats Spills =
          removeCallSpills(Img, Analysis.Prog, Analysis.Summaries);
      Stats.SpillPairsRemoved += Spills.RemovedPairs;
      ChangesThisRound += Spills.RemovedPairs;
      if (Opts.AttributeTransforms)
        for (uint64_t Address : Spills.DeletedAddrs) {
          telemetry::TransformRecord Record;
          Record.Pass = "spill";
          Record.Outcome = "applied";
          Record.Address = int64_t(Address);
          int32_t RoutineIndex =
              findRoutineByAddress(Analysis.Prog, Address);
          if (RoutineIndex >= 0)
            Record.Routine =
                Analysis.Prog.Routines[uint32_t(RoutineIndex)].Name;
          Record.Detail =
              "call-context spill removed: the callee's call-defined "
              "summary shows the spilled register survives the call";
          Stats.Transforms.push_back(std::move(Record));
        }
    }

    // Dead stores go before dead defs: dead-def elimination may delete an
    // epilogue sp restore whose callers provably never read sp again —
    // sound for registers, but it breaks frame discipline and turns the
    // routine Opaque to the slot dataflow.  Running on still-disciplined
    // frames keeps the store analysis sharp, and nop-ing a store first
    // lets the dead-def pass delete the value producer in the same round.
    if (GovPtr)
      GovPtr->pollOrThrow("opt.pass.dead_store");
    {
      AnalysisResult Analysis = analyzeImage(Img, Conv, AOpts);
      RoundPeakBytes = std::max(RoundPeakBytes, Analysis.Memory.peakBytes());
      telemetry::Span PassSpan("pass.dead_store");
      try {
        ThreadPool SlotPool(Opts.Jobs);
        SlotFlowResult Flow = solveSlotFlow(Analysis.Prog, &SlotPool, GovPtr);
        DeadStoreStats DeadStores = eliminateDeadStackStores(
            Img, Analysis.Prog, Flow,
            Opts.AttributeTransforms ? &Stats.Transforms : nullptr);
        Stats.DeadStoresDeleted += DeadStores.DeletedInsts;
        ChangesThisRound += DeadStores.DeletedInsts;
      } catch (const BudgetBlownError &E) {
        // Only the slot dataflow blew.  Skipping an optimization is
        // always sound, so the round continues without this pass rather
        // than degrading register summaries the pass does not use.
        if (E.verdict() == BudgetVerdict::Cancelled)
          throw;
        ++Stats.SlotFlowSkips;
        Stats.LintReports.push_back(
            "round " + std::to_string(Round + 1) +
            ": dead-store pass skipped: slot dataflow budget blown (" +
            budgetVerdictName(E.verdict()) + ")");
        telemetry::count("degrade.slotflow_skips");
      }
    }

    if (GovPtr)
      GovPtr->pollOrThrow("opt.pass.dead_def");
    {
      AnalysisResult Analysis = analyzeImage(Img, Conv, AOpts);
      RoundPeakBytes = std::max(RoundPeakBytes, Analysis.Memory.peakBytes());
      telemetry::Span PassSpan("pass.dead_def");
      DeadDefStats DeadDefs = eliminateDeadDefs(
          Img, Analysis.Prog, Analysis.Summaries,
          Opts.AttributeTransforms ? &Stats.Transforms : nullptr);
      Stats.DeadDefsDeleted += DeadDefs.DeletedInsts;
      ChangesThisRound += DeadDefs.DeletedInsts;
    }

    ++Stats.Rounds;

    PipelineStats::RoundRecord Record;
    Record.Changes = ChangesThisRound;
    Record.AnalysisPeakBytes = RoundPeakBytes;

    bool Mutated = false;
    if (Opts.PostRoundMutator) {
      Opts.PostRoundMutator(Img, Round);
      Mutated = true;
    }

    // Transactional commit: a round whose output is no longer a valid,
    // round-trippable image never reaches the caller.
    if (ChangesThisRound != 0 || Mutated) {
      telemetry::Span CommitSpan("commit_check");
      std::string Failure = roundFailure(Img, BaselineDefects);
      if (!Failure.empty()) {
        Img = Snapshot;
        Stats = Entering;
        ++Stats.RoundsRolledBack;
        Stats.LintReports.push_back("round " + std::to_string(Round + 1) +
                                    " rolled back: " + Failure);
        Record.RolledBack = true;
        Record.Seconds = RoundTimer.seconds();
        Stats.PerRound.push_back(Record);
        Stats.QuarantinedRoutines = RoundQuarantined;
        Stats.BudgetDegradedRoutines = RoundBudgetDegraded;
        // Re-running the same transforms on the restored image would
        // fail the same way; stop here.
        return false;
      }
    }

    if (Opts.LintSelfCheck || Opts.CrossCheck) {
      AnalysisResult Analysis = analyzeImage(Img, Conv, AOpts);
      if (Opts.LintSelfCheck) {
        LintResult After =
            lintAnalysis(Img, Analysis, selfCheckOptions());
        for (const Diagnostic &D :
             newDiagnostics(Baseline, After, Severity::Warning)) {
          ++Stats.LintRegressions;
          Stats.LintReports.push_back(
              "round " + std::to_string(Round + 1) + ": " + D.str());
        }
      }
      if (Opts.CrossCheck) {
        for (const Diagnostic &D : crossCheckSummaries(Analysis)) {
          ++Stats.CrossCheckMismatches;
          Stats.LintReports.push_back(
              "round " + std::to_string(Round + 1) + ": " + D.str());
        }
      }
    }

    Record.Seconds = RoundTimer.seconds();
    Stats.PerRound.push_back(Record);
    Stats.QuarantinedRoutines = RoundQuarantined;
    Stats.BudgetDegradedRoutines = RoundBudgetDegraded;

    return ChangesThisRound != 0;
    };

    // The retry ladder: a budget blow rolls the round back and re-runs
    // it with the blown group's routines degraded; no growth or an
    // exhausted attempt budget escalates to degrade-everything for one
    // final attempt.  Only cancellation escapes as an exception.
    bool Continue = false;
    for (;;) {
      try {
        AOpts.Cfg.BudgetDegrade = Degraded;
        Continue = RunRound();
        break;
      } catch (const BudgetBlownError &E) {
        // The round's partial mutations were justified by summaries the
        // solver never finished computing; discard them.
        Img = Snapshot;
        if (E.verdict() == BudgetVerdict::Cancelled)
          throw;
        telemetry::count("degrade.budget_blows");
        if (FirstBlow == BudgetVerdict::Ok) {
          FirstBlow = E.verdict();
          FirstBlowPhase = E.phase();
        }
        ++Entering.BudgetRetries;
        if (TriedAll) {
          // Even one unknowable summary per routine did not fit the
          // budget: degradation has nothing left to give.  Stop with
          // the last committed image, which is valid.
          Entering.StoppedOnBudget = true;
          Entering.LintReports.push_back(
              "optimization stopped in round " + std::to_string(Round + 1) +
              ": analysis budget (" + budgetVerdictName(E.verdict()) +
              ") exceeded in " + E.phase() + " with every routine degraded");
          Stats = std::move(Entering);
          Continue = false;
          break;
        }
        bool Grew = mergeRoutineNames(Degraded, E.routines());
        if (!Grew ||
            RetriesThisRound + 1 >= std::max(1u, Opts.Budget.MaxAttempts)) {
          mergeRoutineNames(Degraded, primaryRoutineNames(Img));
          TriedAll = true;
        }
        ++RetriesThisRound;
        Entering.LintReports.push_back(
            "round " + std::to_string(Round + 1) + " retried: " + E.what() +
            "; " + std::to_string(Degraded.size()) + " routine(s) degraded");
        Stats = Entering;
      }
    }
    if (!Continue)
      break;
  }

  if (telemetry::active()) {
    telemetry::count("opt.rounds", Stats.Rounds);
    telemetry::count("opt.rounds_rolled_back", Stats.RoundsRolledBack);
    telemetry::count("opt.dead_defs_deleted", Stats.DeadDefsDeleted);
    telemetry::count("opt.dead_stores_deleted", Stats.DeadStoresDeleted);
    telemetry::count("opt.spill_pairs_removed", Stats.SpillPairsRemoved);
    telemetry::count("opt.save_restore_regs_eliminated",
                     Stats.SaveRestoreRegsEliminated);
    telemetry::count("opt.unreachable_routines_removed",
                     Stats.UnreachableRoutinesRemoved);
    telemetry::count("opt.unreachable_insts_removed",
                     Stats.UnreachableInstsRemoved);
    telemetry::count("opt.lint_regressions", Stats.LintRegressions);
    telemetry::count("opt.cross_check_mismatches",
                     Stats.CrossCheckMismatches);
    telemetry::count("opt.quarantined_routines", Stats.QuarantinedRoutines);
    telemetry::count("opt.budget_retries", Stats.BudgetRetries);
    telemetry::count("opt.budget_degraded_routines",
                     Stats.BudgetDegradedRoutines);
    for (const std::string &Name : Degraded)
      telemetry::degrade({Name, budgetVerdictName(FirstBlow),
                          FirstBlowPhase});
    for (const PipelineStats::RoundRecord &R : Stats.PerRound)
      telemetry::gaugeHigh("opt.memory.peak_bytes", R.AnalysisPeakBytes);
    // Round-level hot-spot attribution: one row per round (the SCC slot
    // carries the round index), plus the convergence histogram of
    // changes-per-round.  Change counts are deterministic; the measured
    // round times carry the "_ns" suffix the determinism scrub keys on.
    {
      std::string RoundPath = telemetry::active()->currentPath() +
                              "/opt.round";
      telemetry::Histogram RoundChanges, RoundNs;
      for (size_t Round = 0; Round < Stats.PerRound.size(); ++Round) {
        const PipelineStats::RoundRecord &R = Stats.PerRound[Round];
        RoundChanges.record(R.Changes);
        uint64_t Ns = uint64_t(R.Seconds * 1e9 + 0.5);
        RoundNs.record(Ns);
        telemetry::HotSpotRecord Row;
        Row.Phase = RoundPath;
        if (R.RolledBack)
          Row.Routine = "(rolled back)";
        Row.Scc = int64_t(Round);
        Row.Pops = R.Changes;
        Row.Ns = Ns;
        telemetry::hotspot(std::move(Row));
      }
      telemetry::recordHistogram("opt.round_changes", RoundChanges);
      telemetry::recordHistogram("opt.round_ns", RoundNs);
    }
    // Attribution records reach the session only here, after the loop:
    // a rolled-back round's records were discarded with its stats, so
    // the run report never attributes a transformation that did not
    // survive.
    for (const telemetry::TransformRecord &Record : Stats.Transforms) {
      telemetry::count(Record.Outcome == "applied"
                           ? "opt.transforms.applied"
                           : "opt.transforms.rejected");
      telemetry::attribute(Record);
    }
  }
  return Stats;
}

PipelineStats spike::optimizeImage(Image &Img, const CallingConv &Conv,
                                   unsigned MaxRounds) {
  PipelineOptions Opts;
  Opts.MaxRounds = MaxRounds;
  return optimizeImage(Img, Conv, Opts);
}

Expected<PipelineStats>
spike::optimizeImageGoverned(Image &Img, const CallingConv &Conv,
                             PipelineOptions Opts, const BudgetOptions &Budget,
                             CancellationToken *Token) {
  Opts.Budget = Budget;
  Opts.Cancel = Token;
  try {
    return optimizeImage(Img, Conv, Opts);
  } catch (const BudgetBlownError &E) {
    // Only cancellation reaches here — every other budget condition
    // degrades soundly inside the loop.
    return E.toStatus();
  }
}
