//===- opt/DeadStoreElim.h - Interprocedural dead-store elim ---*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes stack-slot stores whose value no later load can observe —
/// the memory analogue of dead-def elimination.  The verdict comes from
/// the interprocedural slot dataflow (slice/SlotFlow.h): a store is
/// dead only when the slot is not live after it on any path, counting
/// loads in callees (slot MAY-USE translated to this frame) and loads
/// in callers (slot live-at-exit).  Stores in routines that break frame
/// discipline are never touched, and a single reachable sp escape
/// disables the pass program-wide (GlobalEscape).
///
/// Deleted instructions are overwritten with nops so that no address in
/// the image changes, matching every other pass in the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_OPT_DEADSTOREELIM_H
#define SPIKE_OPT_DEADSTOREELIM_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "slice/SlotFlow.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Result of one dead-store elimination run.
struct DeadStoreStats {
  uint64_t DeletedInsts = 0;

  /// Addresses that were overwritten with nops (for tests/reports).
  std::vector<uint64_t> DeletedAddrs;
};

/// Runs dead-store elimination over every routine of \p Prog, rewriting
/// \p Img in place.  \p Prog must describe \p Img and \p Flow must be
/// the solved slot dataflow of it.
///
/// When \p Records is non-null, the pass attributes its decisions: one
/// "applied" record per deleted store and one "rejected" record per
/// store an interprocedural fact keeps alive (a callee or caller that
/// may read the slot).  The transformation itself is identical either
/// way.
DeadStoreStats eliminateDeadStackStores(
    Image &Img, const Program &Prog, const SlotFlowResult &Flow,
    std::vector<telemetry::TransformRecord> *Records = nullptr);

} // namespace spike

#endif // SPIKE_OPT_DEADSTOREELIM_H
