//===- provenance/Witness.h - Witness chains over derivations -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query side of the provenance engine: walk the derivations a
/// recording analysis captured (see Provenance.h) into a *witness chain*
/// — the concrete sequence of PSG edges, callee summaries, and seeds
/// that forces a queried bit — then independently *replay* the chain,
/// re-deriving every justification from the graph and the calling
/// standard rather than trusting the recorder.  `spike-explain` is a
/// thin CLI over these functions; the differential tests compare
/// rendered witnesses byte-for-byte across thread counts.
///
/// Minimality: each recorded derivation is the *first* one that set its
/// bit, so a witness is a single path (never a DAG of alternatives) and
/// every step is necessary to reach the ground fact along that path.
/// When a queried fact does not hold, no witness exists by construction
/// — the solver computes least fixpoints, and a bit a least fixpoint
/// omits is a bit nothing demands (the `--why-dead` argument).
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_PROVENANCE_WITNESS_H
#define SPIKE_PROVENANCE_WITNESS_H

#include "provenance/Provenance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spike {

struct AnalysisResult;

/// One link of a witness chain: the fact (Fact, Node, Reg) and the
/// recorded derivation justifying it.  For facts the solver never
/// evaluates (Section 3.5 Unknown boundary nodes) the walker
/// synthesizes How.Kind == UnknownBoundary; replay verifies it by
/// recomputing the boundary sets.
struct WitnessStep {
  ProvFact Fact = ProvFact::Live;
  uint32_t Node = 0;
  unsigned Reg = 0;
  ProvDerivation How;
};

/// A complete answer to one "why does this bit hold?" query.
struct Witness {
  /// True if the queried fact holds at all.  False means no witness is
  /// needed (least-fixpoint minimality); Steps is then empty.
  bool Holds = false;

  /// Query-first chain: Steps.front() is the queried fact, each step's
  /// derivation references the next, Steps.back() is grounded.
  std::vector<WitnessStep> Steps;
};

/// Returns the current fact set of kind \p Fact at \p NodeId.
RegSet factSet(const AnalysisResult &A, ProvFact Fact, uint32_t NodeId);

/// Walks the recorded derivations of (\p Fact, \p NodeId, \p Reg) back
/// to a ground fact.  \p A must come from a RecordProvenance analysis.
Witness buildWitness(const AnalysisResult &A, ProvFact Fact, uint32_t NodeId,
                     unsigned Reg);

/// Re-verifies \p W against the graph without consulting the recorder:
/// every step's fact must hold, every justification must re-derive (edge
/// endpoints, Section 3.4 filter, calling-standard labels, boundary and
/// seed sets), consecutive steps must connect, and the chain must end in
/// a ground fact.  On failure, returns false and describes the broken
/// step in \p Error (when non-null).
bool replayWitness(const AnalysisResult &A, const Witness &W,
                   std::string *Error = nullptr);

/// Renders "entry#0 node 3 of 'P1' (block 0 @16)"-style node context.
std::string describeNode(const AnalysisResult &A, uint32_t NodeId);

/// Renders \p W as deterministic human-readable text (one line per step
/// plus the ground summary), byte-identical across thread counts.
std::string renderWitness(const AnalysisResult &A, const Witness &W);

/// The node and edge ids a witness traverses, for DOT highlighting.
struct WitnessPath {
  std::vector<uint32_t> Nodes;
  std::vector<uint32_t> Edges;
};
WitnessPath witnessPath(const Witness &W);

/// Builds and replays a witness for *every* live-at-entry bit of every
/// routine entrance — the `--check-witnesses` / CI contract.
struct WitnessAudit {
  uint64_t EntriesChecked = 0;
  uint64_t BitsChecked = 0;
  std::vector<std::string> Failures; ///< Empty on success.
};
WitnessAudit auditEntryLiveness(const AnalysisResult &A);

/// Renders the witness of every live-at-entry bit (routines, entrances,
/// and registers in ascending order) — the byte-identity surface of the
/// jobs-differential tests.
std::string renderEntryWitnesses(const AnalysisResult &A);

/// The `--why-dead` answer for the definition at \p Address: replays the
/// SL003/DeadDefElim liveness lens at the def site.  If the destination
/// is dead, explains what bounds its life (redefinition, call-kill, or
/// absence from every boundary — the least-fixpoint argument); if it is
/// live, locates a concrete observer (an instruction use, a consuming
/// call, an exit, or an unresolved jump) and chains into the PSG witness
/// behind it.  \p RegArg selects the register when the instruction
/// defines several; -1 picks the first.
struct DeadDefExplanation {
  bool Found = false; ///< Address resolves to a definition of Reg.
  bool Dead = false;  ///< Interprocedurally dead (DeadDefElim would fire).
  unsigned Reg = 0;
  std::string Text; ///< Full rendered explanation.
};
DeadDefExplanation explainDeadDef(const AnalysisResult &A, uint64_t Address,
                                  int RegArg = -1);

} // namespace spike

#endif // SPIKE_PROVENANCE_WITNESS_H
