//===- provenance/Provenance.h - Derivation recording ---------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The derivation recorder behind `spike-explain`: for every bit the PSG
/// solver sets — (node, register) of the monotone set kinds MAY-USE,
/// MAY-DEF, and phase-2 Live — the store remembers *which* edge, callee
/// summary, or exit seed first established it.  Walking those records
/// backward reproduces a concrete witness chain ending in a ground fact
/// (an instruction USE on a summarized path, a calling-standard set at an
/// indirect call, a Section 3.5 unknowable boundary, or an exit seed).
///
/// Only the three monotone (least-fixpoint) kinds are recorded.  MUST-DEF
/// is a must problem solved as a *greatest* fixpoint: its interesting
/// facts are absences ("this register is NOT call-defined"), and absences
/// in a least-fixpoint set need no witness — minimality of the fixpoint
/// is itself the proof that nothing demands the bit.  That is exactly the
/// argument `spike-explain --why-dead` prints (see DESIGN.md §11).
///
/// Cost model: the store follows the telemetry layer's opt-in pattern.
/// Disabled, the recorder entry point is `recordProvenance(nullptr, ...)`
/// — a null check and nothing else; no allocation, no branch into the
/// tables (proven at the allocator level by
/// tests/provenance_noalloc_test.cpp and timed by bench_micro).  Enabled,
/// each slot is written at most once (first derivation wins), which both
/// bounds the cost at one table write per set bit and guarantees the
/// recorded chain is acyclic: a bit's justification only references bits
/// that were set strictly earlier.
///
/// Determinism: records are written exclusively by the serial per-SCC
///-group worklists of PsgSolver (each node belongs to exactly one group,
/// and a group's node range is touched by no other task), and the
/// indirect-call accumulator's sources are merged serially at the level
/// joins in group-id order — so the recorded tables, like every other
/// solver output, are bit-identical at any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_PROVENANCE_PROVENANCE_H
#define SPIKE_PROVENANCE_PROVENANCE_H

#include "isa/Registers.h"
#include "support/RegSet.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spike {

/// The recordable fact kinds: the three monotone set kinds the PSG solver
/// grows from bottom.
enum class ProvFact : uint8_t {
  MayUse, ///< Phase 1 pass B: register may be read before defined.
  MayDef, ///< Phase 1 pass A: register may be defined.
  Live,   ///< Phase 2: register live at the node's program location.
};

/// Number of recordable fact kinds.
inline constexpr unsigned NumProvFacts = 3;

/// Returns "may-use" / "may-def" / "live".
inline const char *provFactName(ProvFact Fact) {
  switch (Fact) {
  case ProvFact::MayUse:
    return "may-use";
  case ProvFact::MayDef:
    return "may-def";
  case ProvFact::Live:
    return "live";
  }
  return "<unknown>";
}

/// How one recorded bit was first derived.  Ground kinds terminate a
/// witness chain; step kinds reference one earlier fact (Ref at Node).
enum class ProvKind : uint8_t {
  None, ///< Slot never written (fact absent, or store disabled).

  // --- Ground kinds: the chain ends here. -------------------------------
  EdgeLabel,        ///< A flow-summary edge's own label carries the bit:
                    ///< an instruction USE/DEF on an anchor-free path.
  IndirectCall,     ///< The fixed calling-standard (or annotation) label
                    ///< of an indirect call's call-return edge.
  CallRa,           ///< The call instruction's own definition of ra.
  SeedUnknownCaller,///< Exit seed: routine may return to unknown code
                    ///< (program entry routine or address-taken).
  SeedQuarantine,   ///< Exit seed: reachable from quarantined code, all
                    ///< registers assumed live.
  UnknownBoundary,  ///< Section 3.5 boundary at an unresolved jump.  The
                    ///< solver never evaluates Unknown nodes, so this
                    ///< kind is synthesized by the witness walker and
                    ///< verified by recomputing the boundary sets.

  // --- Step kinds: the chain continues at (Ref, Node). ------------------
  EdgeFlow,    ///< Flows over edge Edge from the same fact at Node (its
               ///< destination), surviving the label's MUST-DEF.
  CallSummary, ///< A direct call-return edge's label carries the bit,
               ///< which the Section 3.4 filter admitted from fact Ref at
               ///< the callee entry node Node.
  ReturnLive,  ///< Exit node: pulled from the Live set of return node
               ///< Node (a call site of this routine).
  IndirectHub, ///< Address-taken exit: pulled from the indirect-call
               ///< accumulator, whose first contribution of this register
               ///< came from indirect return node Node.
};

/// Returns true if \p Kind terminates a witness chain.
inline bool isGroundKind(ProvKind Kind) {
  switch (Kind) {
  case ProvKind::EdgeLabel:
  case ProvKind::IndirectCall:
  case ProvKind::CallRa:
  case ProvKind::SeedUnknownCaller:
  case ProvKind::SeedQuarantine:
  case ProvKind::UnknownBoundary:
    return true;
  default:
    return false;
  }
}

/// One recorded derivation: how a (fact, node, register) bit was first
/// set.  Edge and Node are meaningful per ProvKind (see above); unused
/// fields stay at their defaults so derivations compare bitwise.
struct ProvDerivation {
  /// "No edge" / "no node" sentinel.
  static constexpr uint32_t NoId = 0xffffffffu;

  ProvKind Kind = ProvKind::None;
  ProvFact Ref = ProvFact::MayUse; ///< Referenced fact kind (step kinds).
  uint32_t Edge = NoId;            ///< PSG edge id, when edge-borne.
  uint32_t Node = NoId;            ///< Referenced node id (step kinds).

  bool operator==(const ProvDerivation &) const = default;
};

/// The whole-program derivation store: one ProvDerivation slot per
/// (fact kind, PSG node, integer register), flat and index-computed so
/// recording is a bounds-free array write.  Empty (default-constructed)
/// means disabled.
class ProvenanceStore {
public:
  /// Enables the store for a graph of \p NumNodes nodes, clearing any
  /// prior contents.
  void init(size_t NumNodes) {
    for (std::vector<ProvDerivation> &Table : Tables)
      Table.assign(NumNodes * NumIntRegs, ProvDerivation());
  }

  /// True once init() ran (recording and lookups are live).
  bool enabled() const { return !Tables[0].empty(); }

  /// Number of nodes the store was sized for (0 when disabled).
  size_t numNodes() const { return Tables[0].size() / NumIntRegs; }

  /// Bytes held by the derivation tables.
  size_t bytes() const {
    return NumProvFacts * Tables[0].size() * sizeof(ProvDerivation);
  }

  /// The writable slot for one bit.  Only valid when enabled.
  ProvDerivation &slot(ProvFact Fact, uint32_t NodeId, unsigned Reg) {
    return Tables[unsigned(Fact)][size_t(NodeId) * NumIntRegs + Reg];
  }

  /// The recorded derivation of one bit, or null when the store is
  /// disabled or nothing was recorded.
  const ProvDerivation *lookup(ProvFact Fact, uint32_t NodeId,
                               unsigned Reg) const {
    if (!enabled())
      return nullptr;
    const ProvDerivation &D =
        Tables[unsigned(Fact)][size_t(NodeId) * NumIntRegs + Reg];
    return D.Kind == ProvKind::None ? nullptr : &D;
  }

  bool operator==(const ProvenanceStore &) const = default;

private:
  std::vector<ProvDerivation> Tables[NumProvFacts];
};

/// Records \p D as the derivation of fact \p Fact for every register of
/// \p Regs at \p NodeId.  First derivation wins: slots already holding a
/// record are left untouched, keeping chains acyclic.  A null \p Store is
/// the disabled path — one branch, no memory touched — so the solver can
/// call this unconditionally.  Returns the number of freshly recorded
/// bits (the provenance.records counter).
inline uint64_t recordProvenance(ProvenanceStore *Store, ProvFact Fact,
                                 uint32_t NodeId, RegSet Regs,
                                 const ProvDerivation &D) {
  if (!Store)
    return 0;
  uint64_t Fresh = 0;
  for (unsigned Reg : Regs) {
    ProvDerivation &Slot = Store->slot(Fact, NodeId, Reg);
    if (Slot.Kind == ProvKind::None) {
      Slot = D;
      ++Fresh;
    }
  }
  return Fresh;
}

} // namespace spike

#endif // SPIKE_PROVENANCE_PROVENANCE_H
