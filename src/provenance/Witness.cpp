//===- provenance/Witness.cpp - Witness chains over derivations -----------===//

#include "provenance/Witness.h"

#include "cfg/CfgBuilder.h"
#include "dataflow/CallPolicy.h"
#include "dataflow/Liveness.h"
#include "psg/Analyzer.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace spike;

RegSet spike::factSet(const AnalysisResult &A, ProvFact Fact,
                      uint32_t NodeId) {
  const PsgNode &Node = A.Psg.Nodes[NodeId];
  switch (Fact) {
  case ProvFact::MayUse:
    return Node.Sets.MayUse;
  case ProvFact::MayDef:
    return Node.Sets.MayDef;
  case ProvFact::Live:
    return Node.Live;
  }
  return RegSet();
}

Witness spike::buildWitness(const AnalysisResult &A, ProvFact Fact,
                            uint32_t NodeId, unsigned Reg) {
  Witness W;
  if (NodeId >= A.Psg.Nodes.size() || Reg >= NumIntRegs ||
      !factSet(A, Fact, NodeId).contains(Reg))
    return W;
  W.Holds = true;
  telemetry::count("explain.queries");

  // Recorded chains are acyclic (first derivation wins, and every
  // reference points at a bit set strictly earlier), so the cap is a
  // defensive bound, not a truncation point.
  size_t Cap = size_t(NumProvFacts) * A.Psg.Nodes.size() + 1;
  ProvFact CurFact = Fact;
  uint32_t CurNode = NodeId;
  while (W.Steps.size() < Cap) {
    WitnessStep Step;
    Step.Fact = CurFact;
    Step.Node = CurNode;
    Step.Reg = Reg;
    if (const ProvDerivation *D = A.Provenance.lookup(CurFact, CurNode, Reg))
      Step.How = *D;
    else if (A.Psg.Nodes[CurNode].Kind == PsgNodeKind::Unknown)
      // The solver never evaluates Unknown nodes: their sets are the
      // Section 3.5 boundary values, a ground fact replay can recompute.
      Step.How.Kind = ProvKind::UnknownBoundary;
    // else: leave Kind == None; replay reports the missing derivation.
    W.Steps.push_back(Step);
    telemetry::count("explain.steps");
    if (Step.How.Kind == ProvKind::None || isGroundKind(Step.How.Kind))
      break;
    CurFact = Step.How.Ref;
    CurNode = Step.How.Node;
  }
  return W;
}

namespace {

/// The anchor instruction address of \p NodeId (the entrance address for
/// entry nodes, the terminator address otherwise).
uint64_t nodeAddress(const AnalysisResult &A, uint32_t NodeId) {
  const PsgNode &Node = A.Psg.Nodes[NodeId];
  const Routine &R = A.Prog.Routines[Node.RoutineIndex];
  if (Node.Kind == PsgNodeKind::Entry)
    return R.EntryAddresses[Node.AuxIndex];
  return R.Blocks[Node.BlockIndex].End - 1;
}

bool fail(std::string *Error, size_t StepIndex, const std::string &Why) {
  if (Error)
    *Error = "step " + std::to_string(StepIndex) + ": " + Why;
  telemetry::count("explain.replay_failures");
  return false;
}

/// One step's justification re-derived from the graph; continuity with
/// the following step is checked by the caller.
bool replayStep(const AnalysisResult &A, const WitnessStep &Step,
                size_t StepIndex, std::string *Error) {
  const Program &Prog = A.Prog;
  const ProgramSummaryGraph &Psg = A.Psg;
  const PsgNode &Node = Psg.Nodes[Step.Node];
  const ProvDerivation &How = Step.How;

  auto CheckEdge = [&](bool WantCallReturn) -> const PsgEdge * {
    if (How.Edge >= Psg.Edges.size() || Psg.Edges[How.Edge].Src != Step.Node)
      return nullptr;
    const PsgEdge &Edge = Psg.Edges[How.Edge];
    return Edge.IsCallReturn == WantCallReturn ? &Edge : nullptr;
  };
  const BasicBlock &Block =
      Prog.Routines[Node.RoutineIndex].Blocks[Node.BlockIndex];

  switch (How.Kind) {
  case ProvKind::None:
    return fail(Error, StepIndex, "no derivation recorded for the fact");

  case ProvKind::EdgeLabel: {
    const PsgEdge *Edge = CheckEdge(false);
    if (!Edge)
      return fail(Error, StepIndex, "not a flow-summary edge of the node");
    RegSet Label = Step.Fact == ProvFact::MayDef ? Edge->Label.MayDef
                                                 : Edge->Label.MayUse;
    if (!Label.contains(Step.Reg))
      return fail(Error, StepIndex, "edge label does not carry the register");
    return true;
  }

  case ProvKind::IndirectCall: {
    const PsgEdge *Edge = CheckEdge(true);
    if (!Edge)
      return fail(Error, StepIndex, "not a call-return edge of the node");
    if (Block.Term != TerminatorKind::IndirectCall)
      return fail(Error, StepIndex, "node's block is not an indirect call");
    FlowSets Label = indirectCallLabel(Prog, Block);
    RegSet Set =
        Step.Fact == ProvFact::MayDef ? Label.MayDef : Label.MayUse;
    if (!Set.contains(Step.Reg))
      return fail(Error, StepIndex,
                  "calling-standard label does not carry the register");
    return true;
  }

  case ProvKind::CallRa: {
    const PsgEdge *Edge = CheckEdge(true);
    if (!Edge)
      return fail(Error, StepIndex, "not a call-return edge of the node");
    if (Block.Term != TerminatorKind::Call)
      return fail(Error, StepIndex, "node's block is not a direct call");
    if (Step.Fact != ProvFact::MayDef || Step.Reg != Prog.Conv.RaReg)
      return fail(Error, StepIndex, "fact is not the call's def of ra");
    return true;
  }

  case ProvKind::CallSummary: {
    const PsgEdge *Edge = CheckEdge(true);
    if (!Edge)
      return fail(Error, StepIndex, "not a call-return edge of the node");
    if (Block.Term != TerminatorKind::Call || Block.CalleeRoutine < 0 ||
        Block.CalleeEntry < 0)
      return fail(Error, StepIndex, "node's block is not a direct call");
    uint32_t Callee = uint32_t(Block.CalleeRoutine);
    uint32_t EntryNode =
        Psg.RoutineInfo[Callee].EntryNodes[uint32_t(Block.CalleeEntry)];
    if (How.Node != EntryNode)
      return fail(Error, StepIndex,
                  "referenced node is not the callee's entry node");
    ProvFact WantRef =
        Step.Fact == ProvFact::MayDef ? ProvFact::MayDef : ProvFact::MayUse;
    if (How.Ref != WantRef)
      return fail(Error, StepIndex, "referenced fact kind mismatch");
    if (A.SavedPerRoutine[Callee].contains(Step.Reg))
      return fail(Error, StepIndex,
                  "Section 3.4 filter removes the register (callee "
                  "saves/restores it)");
    if (Step.Fact != ProvFact::MayDef && Step.Reg == Prog.Conv.RaReg)
      return fail(Error, StepIndex, "ra is never call-used");
    return true;
  }

  case ProvKind::UnknownBoundary: {
    if (Node.Kind != PsgNodeKind::Unknown)
      return fail(Error, StepIndex, "node is not a Section 3.5 boundary");
    FlowSets Boundary = unknownJumpBoundary(Prog, Block);
    RegSet Set =
        Step.Fact == ProvFact::MayDef ? Boundary.MayDef : Boundary.MayUse;
    if (!Set.contains(Step.Reg))
      return fail(Error, StepIndex,
                  "recomputed boundary set does not carry the register");
    return true;
  }

  case ProvKind::SeedUnknownCaller: {
    const Routine &R = Prog.Routines[Node.RoutineIndex];
    if (Step.Fact != ProvFact::Live || Node.Kind != PsgNodeKind::Exit)
      return fail(Error, StepIndex, "not a Live fact at an exit node");
    if (!R.AddressTaken &&
        int32_t(Node.RoutineIndex) != Prog.EntryRoutine)
      return fail(Error, StepIndex,
                  "routine cannot return to an unknown caller");
    if (!Prog.Conv.unknownCallerLiveAtExit().contains(Step.Reg))
      return fail(Error, StepIndex,
                  "register not in the calling standard's live-at-exit");
    return true;
  }

  case ProvKind::SeedQuarantine: {
    if (Step.Fact != ProvFact::Live || Node.Kind != PsgNodeKind::Exit)
      return fail(Error, StepIndex, "not a Live fact at an exit node");
    if (!Prog.Routines[Node.RoutineIndex].CalledFromQuarantine)
      return fail(Error, StepIndex,
                  "routine is not reachable from quarantined code");
    return true;
  }

  case ProvKind::ReturnLive: {
    if (Step.Fact != ProvFact::Live || Node.Kind != PsgNodeKind::Exit)
      return fail(Error, StepIndex, "not a Live fact at an exit node");
    if (How.Ref != ProvFact::Live)
      return fail(Error, StepIndex, "referenced fact kind mismatch");
    bool Feeds = false;
    for (uint32_t I = Psg.ReturnsOfExitBegin[Step.Node],
                  E = Psg.ReturnsOfExitBegin[Step.Node + 1];
         I != E; ++I)
      Feeds |= Psg.ReturnsOfExitIds[I] == How.Node;
    if (!Feeds)
      return fail(Error, StepIndex,
                  "referenced return node does not feed this exit");
    return true;
  }

  case ProvKind::IndirectHub: {
    if (Step.Fact != ProvFact::Live || Node.Kind != PsgNodeKind::Exit)
      return fail(Error, StepIndex, "not a Live fact at an exit node");
    if (!Prog.Routines[Node.RoutineIndex].AddressTaken)
      return fail(Error, StepIndex, "routine is not address-taken");
    if (How.Ref != ProvFact::Live)
      return fail(Error, StepIndex, "referenced fact kind mismatch");
    bool IsIndirectReturn = false;
    for (uint32_t Ret : Psg.IndirectReturnNodes)
      IsIndirectReturn |= Ret == How.Node;
    if (!IsIndirectReturn)
      return fail(Error, StepIndex,
                  "referenced node is not an indirect-call return site");
    return true;
  }

  case ProvKind::EdgeFlow: {
    if (How.Edge >= Psg.Edges.size() || Psg.Edges[How.Edge].Src != Step.Node)
      return fail(Error, StepIndex, "not an edge of the node");
    const PsgEdge &Edge = Psg.Edges[How.Edge];
    if (How.Node != Edge.Dst)
      return fail(Error, StepIndex,
                  "referenced node is not the edge's destination");
    if (How.Ref != Step.Fact)
      return fail(Error, StepIndex, "referenced fact kind mismatch");
    if (Step.Fact != ProvFact::MayDef &&
        Edge.Label.MustDef.contains(Step.Reg))
      return fail(Error, StepIndex,
                  "the path's MUST-DEF kills the register");
    return true;
  }
  }
  return fail(Error, StepIndex, "unknown derivation kind");
}

} // namespace

bool spike::replayWitness(const AnalysisResult &A, const Witness &W,
                          std::string *Error) {
  telemetry::count("explain.replays");
  if (!W.Holds || W.Steps.empty())
    return fail(Error, 0, "witness holds no steps");
  for (size_t I = 0; I < W.Steps.size(); ++I) {
    const WitnessStep &Step = W.Steps[I];
    if (Step.Node >= A.Psg.Nodes.size() || Step.Reg >= NumIntRegs)
      return fail(Error, I, "step references an invalid node or register");
    if (!factSet(A, Step.Fact, Step.Node).contains(Step.Reg))
      return fail(Error, I, "stated fact does not hold in the solved graph");
    if (!replayStep(A, Step, I, Error))
      return false;
    bool Last = I + 1 == W.Steps.size();
    if (isGroundKind(Step.How.Kind)) {
      if (!Last)
        return fail(Error, I, "ground fact in the middle of the chain");
      return true;
    }
    if (Last)
      return fail(Error, I, "chain does not end in a ground fact");
    const WitnessStep &Next = W.Steps[I + 1];
    if (Next.Fact != Step.How.Ref || Next.Node != Step.How.Node ||
        Next.Reg != Step.Reg)
      return fail(Error, I, "next step does not match the derivation");
  }
  return fail(Error, W.Steps.size(), "unterminated chain");
}

std::string spike::describeNode(const AnalysisResult &A, uint32_t NodeId) {
  const PsgNode &Node = A.Psg.Nodes[NodeId];
  const Routine &R = A.Prog.Routines[Node.RoutineIndex];
  const BasicBlock &Block = R.Blocks[Node.BlockIndex];

  std::string S = psgNodeKindName(Node.Kind);
  if (Node.Kind == PsgNodeKind::Entry || Node.Kind == PsgNodeKind::Exit)
    S += "#" + std::to_string(Node.AuxIndex);
  S += " node " + std::to_string(NodeId) + " of '" + R.Name + "' (block " +
       std::to_string(Node.BlockIndex) + " @" +
       std::to_string(nodeAddress(A, NodeId));
  if ((Node.Kind == PsgNodeKind::Call || Node.Kind == PsgNodeKind::Return)) {
    if (Block.Term == TerminatorKind::Call && Block.CalleeRoutine >= 0)
      S += ", calls '" +
           A.Prog.Routines[uint32_t(Block.CalleeRoutine)].Name + "'";
    else
      S += ", indirect call";
  }
  S += ")";
  return S;
}

namespace {

/// The "via ..." justification line of one step.
std::string describeDerivation(const AnalysisResult &A,
                               const WitnessStep &Step) {
  const ProvDerivation &How = Step.How;
  std::string RegStr = regName(Step.Reg);
  auto EdgeRef = [&] { return "edge e" + std::to_string(How.Edge); };

  switch (How.Kind) {
  case ProvKind::None:
    return "<no derivation recorded>";
  case ProvKind::EdgeLabel:
    return "via flow-summary " + EdgeRef() + ": instruction " +
           (Step.Fact == ProvFact::MayDef ? std::string("DEF")
                                          : std::string("USE")) +
           " of " + RegStr + " on an anchor-free path [ground]";
  case ProvKind::IndirectCall:
    return "via call-return " + EdgeRef() +
           ": calling-standard label of the indirect call (hub) [ground]";
  case ProvKind::CallRa:
    return "via call-return " + EdgeRef() +
           ": the call instruction itself defines " + RegStr + " [ground]";
  case ProvKind::CallSummary:
    return "via call-return " + EdgeRef() + ": " + RegStr + " is " +
           (Step.Fact == ProvFact::MayDef ? "call-killed" : "call-used") +
           " per the callee summary at " + describeNode(A, How.Node) +
           " (Section 3.4 filter passed)";
  case ProvKind::UnknownBoundary:
    return "via the Section 3.5 boundary: " + RegStr +
           " assumed live at the unresolved jump's unknown target [ground]";
  case ProvKind::SeedUnknownCaller:
    return "via the exit seed: the routine may return to an unknown "
           "caller, whose calling standard keeps " +
           RegStr + " live [ground]";
  case ProvKind::SeedQuarantine:
    return "via the exit seed: the routine is reachable from quarantined "
           "code, so every register is assumed live [ground]";
  case ProvKind::ReturnLive:
    return "via the caller's return site: " + RegStr + " is live at " +
           describeNode(A, How.Node);
  case ProvKind::IndirectHub:
    return "via the indirect-call accumulator: " + RegStr +
           " is live at " + describeNode(A, How.Node);
  case ProvKind::EdgeFlow:
    return "via flow " + EdgeRef() + " to " + describeNode(A, How.Node) +
           ": " + RegStr + " survives the path's MUST-DEF";
  }
  return "<unknown derivation>";
}

const char *groundName(ProvKind Kind) {
  switch (Kind) {
  case ProvKind::EdgeLabel:
    return "an instruction access on a summarized path";
  case ProvKind::IndirectCall:
    return "the indirect-call hub (calling standard)";
  case ProvKind::CallRa:
    return "the call instruction's own def of ra";
  case ProvKind::SeedUnknownCaller:
    return "the unknown-caller exit seed";
  case ProvKind::SeedQuarantine:
    return "the quarantine exit seed";
  case ProvKind::UnknownBoundary:
    return "the Section 3.5 unknowable-code boundary";
  default:
    return "<not grounded>";
  }
}

} // namespace

std::string spike::renderWitness(const AnalysisResult &A, const Witness &W) {
  if (!W.Holds)
    return "fact does not hold: the least fixpoint never set this bit, so "
           "nothing in the program demands it (no witness needed)\n";
  std::string Out;
  const WitnessStep &Query = W.Steps.front();
  Out += "witness: " + std::string(provFactName(Query.Fact)) + " " +
         regName(Query.Reg) + " at " + describeNode(A, Query.Node) + "\n";
  for (size_t I = 0; I < W.Steps.size(); ++I) {
    const WitnessStep &Step = W.Steps[I];
    Out += "  [" + std::to_string(I) + "] " + provFactName(Step.Fact) + " " +
           regName(Step.Reg) + " at " + describeNode(A, Step.Node) + "\n";
    Out += "      " + describeDerivation(A, Step) + "\n";
  }
  Out += "  ground: " + std::string(groundName(W.Steps.back().How.Kind)) +
         "\n";
  return Out;
}

WitnessPath spike::witnessPath(const Witness &W) {
  WitnessPath Path;
  for (const WitnessStep &Step : W.Steps) {
    Path.Nodes.push_back(Step.Node);
    if (Step.How.Edge != ProvDerivation::NoId)
      Path.Edges.push_back(Step.How.Edge);
    if (Step.How.Node != ProvDerivation::NoId &&
        (Step.How.Kind == ProvKind::ReturnLive ||
         Step.How.Kind == ProvKind::IndirectHub))
      Path.Nodes.push_back(Step.How.Node);
  }
  return Path;
}

WitnessAudit spike::auditEntryLiveness(const AnalysisResult &A) {
  WitnessAudit Audit;
  for (uint32_t R = 0; R < A.Prog.Routines.size(); ++R)
    for (uint32_t E = 0; E < A.Psg.RoutineInfo[R].EntryNodes.size(); ++E) {
      uint32_t NodeId = A.Psg.RoutineInfo[R].EntryNodes[E];
      ++Audit.EntriesChecked;
      for (unsigned Reg : A.Psg.Nodes[NodeId].Live) {
        ++Audit.BitsChecked;
        Witness W = buildWitness(A, ProvFact::Live, NodeId, Reg);
        std::string Context = std::string(regName(Reg)) + " at " +
                              describeNode(A, NodeId) + ": ";
        if (!W.Holds) {
          Audit.Failures.push_back(Context + "no witness built");
          continue;
        }
        std::string Err;
        if (!replayWitness(A, W, &Err))
          Audit.Failures.push_back(Context + "replay failed (" + Err + ")");
      }
    }
  return Audit;
}

std::string spike::renderEntryWitnesses(const AnalysisResult &A) {
  std::string Out;
  for (uint32_t R = 0; R < A.Prog.Routines.size(); ++R)
    for (uint32_t E = 0; E < A.Psg.RoutineInfo[R].EntryNodes.size(); ++E) {
      uint32_t NodeId = A.Psg.RoutineInfo[R].EntryNodes[E];
      for (unsigned Reg : A.Psg.Nodes[NodeId].Live)
        Out += renderWitness(A, buildWitness(A, ProvFact::Live, NodeId, Reg));
    }
  return Out;
}

namespace {

/// What scanning one block (from a given offset) for an observer of Reg
/// concluded.
struct ScanOutcome {
  enum Kind {
    Flows,      ///< Neither used nor killed: successors inherit the search.
    Killed,     ///< Redefined before any use: the path ends.
    UseFound,   ///< A concrete observer was located; Text explains it.
  } K = Flows;
  std::string Text;
  uint64_t KillAddress = 0;
  std::string KillText;
};

ScanOutcome scanBlockForObserver(const AnalysisResult &A, uint32_t RIdx,
                                 uint32_t BlockIndex, uint64_t FromOffset,
                                 unsigned Reg) {
  const Program &Prog = A.Prog;
  const Routine &R = Prog.Routines[RIdx];
  const BasicBlock &Block = R.Blocks[BlockIndex];
  ScanOutcome Out;

  for (uint64_t O = FromOffset; O < Block.size(); ++O) {
    uint64_t Address = Block.Begin + O;
    const Instruction &Inst = Prog.Insts[Address];
    if (Inst.uses().contains(Reg)) {
      Out.K = ScanOutcome::UseFound;
      Out.Text = "read by '" + Inst.str(int64_t(Address)) + "' @" +
                 std::to_string(Address) + " (block " +
                 std::to_string(BlockIndex) + ")";
      return Out;
    }
    if (Inst.defs().contains(Reg)) {
      Out.K = ScanOutcome::Killed;
      Out.KillAddress = Address;
      Out.KillText = "redefined by '" + Inst.str(int64_t(Address)) + "' @" +
                     std::to_string(Address) + " before any use";
      return Out;
    }
  }

  uint64_t TermAddr = Block.End - 1;
  if (Block.endsWithCall()) {
    CallEffect Effect = A.Summaries.callEffect(Prog, RIdx, BlockIndex);
    if (Effect.Used.contains(Reg)) {
      Out.K = ScanOutcome::UseFound;
      std::string Callee =
          Block.Term == TerminatorKind::Call && Block.CalleeRoutine >= 0
              ? "'" + Prog.Routines[uint32_t(Block.CalleeRoutine)].Name + "'"
              : "an indirect callee";
      Out.Text = "consumed by the call to " + Callee + " @" +
                 std::to_string(TermAddr) + ": " + regName(Reg) +
                 " is call-used";
      if (Block.Term == TerminatorKind::Call && Block.CalleeRoutine >= 0 &&
          Block.CalleeEntry >= 0) {
        uint32_t EntryNode =
            A.Psg.RoutineInfo[uint32_t(Block.CalleeRoutine)]
                .EntryNodes[uint32_t(Block.CalleeEntry)];
        Out.Text += "\n" + renderWitness(A, buildWitness(A, ProvFact::MayUse,
                                                         EntryNode, Reg));
      }
      return Out;
    }
    if (Effect.Defined.contains(Reg)) {
      Out.K = ScanOutcome::Killed;
      Out.KillAddress = TermAddr;
      Out.KillText = "call-defined by the call @" + std::to_string(TermAddr) +
                     " before any use";
      return Out;
    }
  }
  if (Block.Term == TerminatorKind::Return) {
    if (A.Summaries.liveAtExitOfBlock(Prog, RIdx, BlockIndex).contains(Reg)) {
      Out.K = ScanOutcome::UseFound;
      Out.Text = "live at the routine exit @" + std::to_string(TermAddr) +
                 " (block " + std::to_string(BlockIndex) + ")";
      for (uint32_t ExitIdx = 0; ExitIdx < R.ExitBlocks.size(); ++ExitIdx)
        if (R.ExitBlocks[ExitIdx] == BlockIndex) {
          uint32_t ExitNode = A.Psg.RoutineInfo[RIdx].ExitNodes[ExitIdx];
          Out.Text += "\n" + renderWitness(A, buildWitness(A, ProvFact::Live,
                                                           ExitNode, Reg));
          break;
        }
      return Out;
    }
  }
  if (Block.Term == TerminatorKind::UnresolvedJump &&
      Prog.jumpTargetLive(TermAddr).contains(Reg)) {
    Out.K = ScanOutcome::UseFound;
    Out.Text = "assumed live at the unresolved jump @" +
               std::to_string(TermAddr) +
               " (Section 3.5: unknown code may read anything)";
    return Out;
  }
  return Out; // Flows to successors.
}

} // namespace

DeadDefExplanation spike::explainDeadDef(const AnalysisResult &A,
                                         uint64_t Address, int RegArg) {
  DeadDefExplanation Ex;
  telemetry::count("explain.queries");
  const Program &Prog = A.Prog;

  int32_t RIdxS = findRoutineByAddress(Prog, Address);
  if (RIdxS < 0 || Address >= Prog.Insts.size()) {
    Ex.Text = "@" + std::to_string(Address) + ": no routine owns this address";
    return Ex;
  }
  uint32_t RIdx = uint32_t(RIdxS);
  const Routine &R = Prog.Routines[RIdx];
  if (R.Quarantined) {
    Ex.Text = "@" + std::to_string(Address) + ": routine '" + R.Name +
              "' is quarantined; its decoded form is a placeholder and is "
              "never analyzed for dead definitions";
    return Ex;
  }

  int32_t BlockIndexS = -1;
  for (uint32_t B = 0; B < R.Blocks.size(); ++B)
    if (Address >= R.Blocks[B].Begin && Address < R.Blocks[B].End)
      BlockIndexS = int32_t(B);
  if (BlockIndexS < 0) {
    Ex.Text = "@" + std::to_string(Address) + ": address not in any block of '" +
              R.Name + "'";
    return Ex;
  }
  uint32_t BlockIndex = uint32_t(BlockIndexS);
  const BasicBlock &Block = R.Blocks[BlockIndex];

  const Instruction &Inst = Prog.Insts[Address];
  RegSet Defs = Inst.defs();
  unsigned Reg =
      RegArg >= 0 ? unsigned(RegArg) : (Defs.empty() ? NumIntRegs : *Defs.begin());
  if (Reg >= NumIntRegs || !Defs.contains(Reg)) {
    Ex.Text = "@" + std::to_string(Address) + ": '" +
              Inst.str(int64_t(Address)) + "' does not define " +
              (Reg < NumIntRegs ? regName(Reg) : "any register");
    return Ex;
  }
  Ex.Found = true;
  Ex.Reg = Reg;

  // The same liveness lens SL003 and DeadDefElim use.
  LivenessResult Live = solveLiveness(
      R,
      [&](uint32_t B) { return A.Summaries.callEffect(Prog, RIdx, B); },
      [&](uint32_t B) { return A.Summaries.liveAtExitOfBlock(Prog, RIdx, B); },
      [&](uint32_t B) { return Prog.jumpTargetLive(R.Blocks[B].End - 1); });
  CallEffect Effect;
  const CallEffect *EffectPtr = nullptr;
  if (Block.endsWithCall()) {
    Effect = A.Summaries.callEffect(Prog, RIdx, BlockIndex);
    EffectPtr = &Effect;
  }
  std::vector<RegSet> LiveBefore = liveBeforeEachInst(
      Prog, R, BlockIndex, Live.LiveOut[BlockIndex], EffectPtr);
  uint64_t Offset = Address - Block.Begin;
  RegSet LiveAfter = Offset + 1 < Block.size() ? LiveBefore[Offset + 1]
                                               : Live.LiveOut[BlockIndex];
  Ex.Dead = !LiveAfter.contains(Reg);

  Ex.Text = "def-site @" + std::to_string(Address) + " '" +
            Inst.str(int64_t(Address)) + "' in '" + R.Name + "' block " +
            std::to_string(BlockIndex) + ": " + regName(Reg) + " is " +
            (Ex.Dead ? "DEAD" : "LIVE") + " after the definition\n";

  if (Ex.Dead) {
    // Least-fixpoint minimality: deadness is the *absence* of every
    // possible observer.  Name the bound that ends the register's life
    // on the straight-line remainder, then state the argument.
    ScanOutcome Scan =
        scanBlockForObserver(A, RIdx, BlockIndex, Offset + 1, Reg);
    assert(Scan.K != ScanOutcome::UseFound && "dead def has an observer");
    if (Scan.K == ScanOutcome::Killed)
      Ex.Text += "  " + Scan.KillText + "\n";
    else
      Ex.Text += "  " + std::string(regName(Reg)) +
                 " is not live out of block " + std::to_string(BlockIndex) +
                 ": no successor's live-in, exit seed, or unknown-jump "
                 "boundary contains it\n";
    Ex.Text += "  liveness is a least fixpoint: a bit it never sets has no "
               "derivation, so no path can observe the value "
               "(DeadDefElim rewrites exactly these sites to nops)\n";
    return Ex;
  }

  // Live: locate a concrete observer with a deterministic breadth-first
  // search along blocks whose live-in keeps the register alive.
  ScanOutcome Scan = scanBlockForObserver(A, RIdx, BlockIndex, Offset + 1, Reg);
  if (Scan.K == ScanOutcome::UseFound) {
    Ex.Text += "  " + Scan.Text + "\n";
    return Ex;
  }
  if (Scan.K == ScanOutcome::Flows) {
    std::vector<bool> Visited(R.Blocks.size(), false);
    std::vector<uint32_t> Queue;
    for (uint32_t Succ : Block.Succs)
      if (Live.LiveIn[Succ].contains(Reg) && !Visited[Succ]) {
        Visited[Succ] = true;
        Queue.push_back(Succ);
      }
    for (size_t Head = 0; Head < Queue.size(); ++Head) {
      uint32_t B = Queue[Head];
      ScanOutcome S = scanBlockForObserver(A, RIdx, B, 0, Reg);
      if (S.K == ScanOutcome::UseFound) {
        Ex.Text += "  flows to block " + std::to_string(B) + ", " + S.Text +
                   "\n";
        return Ex;
      }
      if (S.K == ScanOutcome::Killed)
        continue;
      for (uint32_t Succ : R.Blocks[B].Succs)
        if (Live.LiveIn[Succ].contains(Reg) && !Visited[Succ]) {
          Visited[Succ] = true;
          Queue.push_back(Succ);
        }
    }
  }
  Ex.Text += "  (live per the solved sets; no single-block observer was "
             "isolated)\n";
  return Ex;
}
