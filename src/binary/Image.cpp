//===- binary/Image.cpp - Executable image model --------------------------===//

#include "binary/Image.h"

#include "telemetry/Telemetry.h"

#include "binary/Validator.h"
#include "isa/Encoding.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace spike;

void Image::finalize() {
  std::stable_sort(Symbols.begin(), Symbols.end(),
                   [](const Symbol &A, const Symbol &B) {
                     if (A.Address != B.Address)
                       return A.Address < B.Address;
                     return !A.Secondary && B.Secondary;
                   });
}

std::optional<std::string> Image::verify() const {
  ValidationReport Report = validateImage(*this);
  if (const ValidationFinding *F = Report.firstStrict())
    return F->Message;
  return std::nullopt;
}

namespace {

/// Little-endian byte writer for the container format.
class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  void u64(uint64_t Value) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(uint8_t(Value >> (8 * I)));
  }

  void str(const std::string &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }

private:
  std::vector<uint8_t> &Bytes;
};

/// Little-endian byte reader with bounds checking.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool u64(uint64_t &Value) {
    if (Offset + 8 > Bytes.size())
      return false;
    Value = 0;
    for (int I = 0; I < 8; ++I)
      Value |= uint64_t(Bytes[Offset + I]) << (8 * I);
    Offset += 8;
    return true;
  }

  bool str(std::string &Value) {
    uint64_t Size = 0;
    // Compare against remaining() rather than Offset + Size: a huge
    // corrupted length would overflow the addition and slip past the
    // bounds check into a giant allocation.
    if (!u64(Size) || Size > remaining())
      return false;
    Value.assign(Bytes.begin() + Offset, Bytes.begin() + Offset + Size);
    Offset += Size;
    return true;
  }

  bool atEnd() const { return Offset == Bytes.size(); }

  /// Bytes left to read; used to sanity-check element counts before
  /// resizing containers (a corrupted count must not trigger a huge
  /// allocation).
  size_t remaining() const { return Bytes.size() - Offset; }

  /// Current byte offset, for error reporting.
  size_t offset() const { return Offset; }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Offset = 0;
};

constexpr uint64_t ImageMagic = 0x3158454b49505357ull; // "WSPIKEX1"

} // namespace

std::vector<uint8_t> spike::writeImage(const Image &Img) {
  std::vector<uint8_t> Bytes;
  ByteWriter Writer(Bytes);
  Writer.u64(ImageMagic);
  Writer.u64(Img.EntryAddress);
  Writer.u64(Img.Code.size());
  for (uint64_t Word : Img.Code)
    Writer.u64(Word);
  Writer.u64(Img.Symbols.size());
  for (const Symbol &Sym : Img.Symbols) {
    Writer.str(Sym.Name);
    Writer.u64(Sym.Address);
    Writer.u64((Sym.Secondary ? 1 : 0) | (Sym.AddressTaken ? 2 : 0));
  }
  Writer.u64(Img.JumpTables.size());
  for (const JumpTable &Table : Img.JumpTables) {
    Writer.u64(Table.Targets.size());
    for (uint64_t Target : Table.Targets)
      Writer.u64(Target);
  }
  Writer.u64(Img.Data.size());
  for (int64_t Word : Img.Data)
    Writer.u64(uint64_t(Word));
  Writer.u64(Img.CallAnnotations.size());
  for (const IndirectCallAnnotation &Annot : Img.CallAnnotations) {
    Writer.u64(Annot.Address);
    Writer.u64(Annot.Used.mask());
    Writer.u64(Annot.Defined.mask());
    Writer.u64(Annot.Killed.mask());
  }
  Writer.u64(Img.JumpAnnotations.size());
  for (const IndirectJumpAnnotation &Annot : Img.JumpAnnotations) {
    Writer.u64(Annot.Address);
    Writer.u64(Annot.LiveAtTarget.mask());
  }
  return Bytes;
}

Expected<Image> spike::loadImage(const std::vector<uint8_t> &Bytes) {
  telemetry::Span LoadSpan("binary.load");
  telemetry::count("binary.load.bytes", Bytes.size());
  ByteReader Reader(Bytes);
  auto Fail = [&](ErrCode Code, const char *Message) -> Expected<Image> {
    telemetry::count("binary.load.errors");
    return Status::error(Code, Message).atOffset(int64_t(Reader.offset()));
  };
  uint64_t Magic = 0;
  if (!Reader.u64(Magic) || Magic != ImageMagic)
    return Fail(ErrCode::BadMagic, "bad magic; not a SPKX image");
  Image Img;
  uint64_t Count = 0;
  // Each serialized element occupies at least MinElementBytes, so any
  // count larger than remaining()/MinElementBytes is corrupt; checking
  // first keeps corrupted inputs from triggering huge allocations.
  auto CountOk = [&](uint64_t N, uint64_t MinElementBytes) {
    return N <= Reader.remaining() / MinElementBytes;
  };
  if (!Reader.u64(Img.EntryAddress) || !Reader.u64(Count) ||
      !CountOk(Count, 8))
    return Fail(ErrCode::TruncatedHeader, "truncated header");
  Img.Code.resize(Count);
  for (uint64_t &Word : Img.Code)
    if (!Reader.u64(Word))
      return Fail(ErrCode::TruncatedCode, "truncated code section");
  if (!Reader.u64(Count) || !CountOk(Count, 24))
    return Fail(ErrCode::TruncatedSymbols, "truncated symbol table");
  Img.Symbols.resize(Count);
  for (Symbol &Sym : Img.Symbols) {
    uint64_t Flags = 0;
    if (!Reader.str(Sym.Name) || !Reader.u64(Sym.Address) ||
        !Reader.u64(Flags))
      return Fail(ErrCode::TruncatedSymbols, "truncated symbol record");
    Sym.Secondary = (Flags & 1) != 0;
    Sym.AddressTaken = (Flags & 2) != 0;
  }
  if (!Reader.u64(Count) || !CountOk(Count, 8))
    return Fail(ErrCode::TruncatedJumpTables,
                "truncated jump-table section");
  Img.JumpTables.resize(Count);
  for (JumpTable &Table : Img.JumpTables) {
    if (!Reader.u64(Count) || !CountOk(Count, 8))
      return Fail(ErrCode::TruncatedJumpTables, "truncated jump table");
    Table.Targets.resize(Count);
    for (uint64_t &Target : Table.Targets)
      if (!Reader.u64(Target))
        return Fail(ErrCode::TruncatedJumpTables,
                    "truncated jump-table entry");
  }
  if (!Reader.u64(Count) || !CountOk(Count, 8))
    return Fail(ErrCode::TruncatedData, "truncated data section");
  Img.Data.resize(Count);
  for (int64_t &Word : Img.Data) {
    uint64_t Raw = 0;
    if (!Reader.u64(Raw))
      return Fail(ErrCode::TruncatedData, "truncated data word");
    Word = int64_t(Raw);
  }
  // Section 3.5 annotation tables (absent in older images).
  if (!Reader.atEnd()) {
    if (!Reader.u64(Count) || !CountOk(Count, 32))
      return Fail(ErrCode::TruncatedAnnotations,
                  "truncated call-annotation section");
    Img.CallAnnotations.resize(Count);
    for (IndirectCallAnnotation &Annot : Img.CallAnnotations) {
      uint64_t Used = 0, Defined = 0, Killed = 0;
      if (!Reader.u64(Annot.Address) || !Reader.u64(Used) ||
          !Reader.u64(Defined) || !Reader.u64(Killed))
        return Fail(ErrCode::TruncatedAnnotations,
                    "truncated call annotation");
      Annot.Used = RegSet::fromMask(Used);
      Annot.Defined = RegSet::fromMask(Defined);
      Annot.Killed = RegSet::fromMask(Killed);
    }
    if (!Reader.u64(Count) || !CountOk(Count, 16))
      return Fail(ErrCode::TruncatedAnnotations,
                  "truncated jump-annotation section");
    Img.JumpAnnotations.resize(Count);
    for (IndirectJumpAnnotation &Annot : Img.JumpAnnotations) {
      uint64_t Live = 0;
      if (!Reader.u64(Annot.Address) || !Reader.u64(Live))
        return Fail(ErrCode::TruncatedAnnotations,
                    "truncated jump annotation");
      Annot.LiveAtTarget = RegSet::fromMask(Live);
    }
  }
  if (!Reader.atEnd())
    return Fail(ErrCode::TrailingBytes, "trailing bytes after image");
  if (telemetry::active()) {
    telemetry::count("binary.load.images");
    telemetry::count("binary.load.code_words", Img.Code.size());
    telemetry::count("binary.load.symbols", Img.Symbols.size());
    telemetry::count("binary.load.jump_tables", Img.JumpTables.size());
  }
  return Img;
}

std::optional<Image> spike::readImage(const std::vector<uint8_t> &Bytes,
                                      std::string *ErrorOut) {
  Expected<Image> Result = loadImage(Bytes);
  if (!Result) {
    if (ErrorOut)
      *ErrorOut = Result.error().Message;
    return std::nullopt;
  }
  return Result.take();
}

bool spike::writeImageFile(const Image &Img, const std::string &Path) {
  std::vector<uint8_t> Bytes = writeImage(Img);
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  return Written == Bytes.size();
}

Expected<Image> spike::loadImageFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Status::error(ErrCode::IoOpen, "cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes;
  uint8_t Buffer[4096];
  size_t Read = 0;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Bytes.insert(Bytes.end(), Buffer, Buffer + Read);
  // A short read must be reported as an I/O failure, not misdiagnosed
  // as a malformed image by the parser below.
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError)
    return Status::error(ErrCode::IoRead,
                         "read error while reading '" + Path + "'")
        .atOffset(int64_t(Bytes.size()));
  if (Bytes.empty())
    return Status::error(ErrCode::EmptyFile, "'" + Path + "' is empty");
  Expected<Image> Result = loadImage(Bytes);
  if (!Result) {
    Status Err = Result.error();
    Err.Message = "'" + Path + "': " + Err.Message;
    return Err;
  }
  return Result;
}

std::optional<Image> spike::readImageFile(const std::string &Path,
                                          std::string *ErrorOut) {
  Expected<Image> Result = loadImageFile(Path);
  if (!Result) {
    if (ErrorOut)
      *ErrorOut = Result.error().Message;
    return std::nullopt;
  }
  return Result.take();
}

void spike::disassemble(const Image &Img, std::string &Out) {
  std::ostringstream OS;
  OS << ".start " << Img.EntryAddress << '\n';

  // Index symbols by address for label printing.
  std::vector<const Symbol *> ByAddress;
  ByAddress.reserve(Img.Symbols.size());
  for (const Symbol &Sym : Img.Symbols)
    ByAddress.push_back(&Sym);
  std::stable_sort(ByAddress.begin(), ByAddress.end(),
                   [](const Symbol *A, const Symbol *B) {
                     return A->Address < B->Address;
                   });
  size_t NextSymbol = 0;
  for (uint64_t Address = 0; Address < Img.Code.size(); ++Address) {
    while (NextSymbol < ByAddress.size() &&
           ByAddress[NextSymbol]->Address == Address) {
      const Symbol *Sym = ByAddress[NextSymbol];
      OS << Sym->Name;
      if (Sym->Secondary)
        OS << " (secondary entry)";
      else if (Sym->AddressTaken)
        OS << " (address taken)";
      OS << ":\n";
      ++NextSymbol;
    }
    std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
    OS << "  " << Address << ":\t";
    if (Inst)
      OS << Inst->str(int64_t(Address));
    else
      OS << "<bad encoding>";
    OS << '\n';
  }
  for (size_t TableIndex = 0; TableIndex < Img.JumpTables.size();
       ++TableIndex) {
    OS << ".table " << TableIndex << ':';
    for (uint64_t Target : Img.JumpTables[TableIndex].Targets)
      OS << ' ' << Target;
    OS << '\n';
  }
  if (!Img.Data.empty()) {
    OS << ".data";
    for (int64_t Word : Img.Data)
      OS << ' ' << Word;
    OS << '\n';
  }
  Out += OS.str();
}
