//===- binary/Image.h - Executable image model ----------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable image format Spike-style analysis consumes.
///
/// Spike is a *post-link-time* optimizer: its input is a fully linked
/// executable.  Our synthetic equivalent is an Image with
///   - a code section of fixed-size instruction words (addresses are word
///     indices starting at 0),
///   - a symbol table naming routine entry points (primary entries define
///     routine boundaries; secondary entries model routines with multiple
///     entrances, which Table 3 reports),
///   - jump-table records ("Spike extracts the jump-table stored with the
///     program to find all possible targets of the jump", Section 3.5),
///   - a data section of 64-bit words for the simulator.
///
/// Images serialize to a small binary file format so the repository
/// genuinely contains load/decode ("disassembly") infrastructure rather
/// than passing in-memory IR around.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_BINARY_IMAGE_H
#define SPIKE_BINARY_IMAGE_H

#include "isa/Instruction.h"
#include "support/Status.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spike {

/// Word address at which the data section is mapped at run time (the
/// ABI's "data segment base"); load/store address arithmetic in generated
/// programs and the simulator both use it.
inline constexpr uint64_t DataSectionBase = 0x200000;

/// A named code address in the image's symbol table.
struct Symbol {
  std::string Name;

  /// Instruction-word address of the entry point.
  uint64_t Address = 0;

  /// True for additional entrances into a routine defined by an earlier
  /// primary symbol; false for the symbol that starts a routine.
  bool Secondary = false;

  /// True if the symbol's address escapes (stored in data, passed around),
  /// making the routine a potential target of indirect calls and its
  /// callers unknowable.
  bool AddressTaken = false;

  bool operator==(const Symbol &) const = default;
};

/// All possible targets of one multiway (jump-table) branch.
struct JumpTable {
  std::vector<uint64_t> Targets;

  bool operator==(const JumpTable &) const = default;
};

/// Compiler/linker-provided summary for one *indirect call* site — the
/// Section 3.5 improvement the paper proposes: "The compiler or linker
/// has exact information ... about the registers assumed to be
/// call-used, call-killed, and call-defined by each indirect call.
/// Making this information available to Spike would ensure safe and
/// accurate dataflow information."  When present, the analysis uses
/// these sets instead of the calling standard's blanket assumption.
struct IndirectCallAnnotation {
  uint64_t Address = 0; ///< Address of the jsr_r instruction.
  RegSet Used;          ///< call-used by any possible target.
  RegSet Defined;       ///< call-defined by every possible target.
  RegSet Killed;        ///< call-killed by any possible target.

  bool operator==(const IndirectCallAnnotation &) const = default;
};

/// Compiler/linker-provided live set for one *unresolved indirect jump*:
/// the registers assumed live at the jump's (unknown) target.  Without
/// it the analysis assumes all registers live (Section 3.5).
struct IndirectJumpAnnotation {
  uint64_t Address = 0; ///< Address of the jmp_r instruction.
  RegSet LiveAtTarget;

  bool operator==(const IndirectJumpAnnotation &) const = default;
};

/// A fully linked synthetic executable.
struct Image {
  /// Encoded instruction words; the address of Code[i] is i.
  std::vector<uint64_t> Code;

  /// Routine entries, sorted by address by finalize().
  std::vector<Symbol> Symbols;

  /// Jump tables referenced by JmpTab instructions via table index.
  std::vector<JumpTable> JumpTables;

  /// Initial contents of the data section (simulator memory image).
  std::vector<int64_t> Data;

  /// Optional Section 3.5 side tables (empty when the toolchain provided
  /// no extra information).
  std::vector<IndirectCallAnnotation> CallAnnotations;
  std::vector<IndirectJumpAnnotation> JumpAnnotations;

  /// Address of the first instruction executed (the program entry).
  uint64_t EntryAddress = 0;

  /// Returns the number of instructions in the code section.
  uint64_t numInstructions() const { return Code.size(); }

  /// Sorts symbols by address (stable; primaries before secondaries at the
  /// same address).  Must be called before analysis.
  void finalize();

  /// Semantic validation: symbol addresses and jump-table targets must
  /// be inside the code section, JmpTab indices must name existing tables,
  /// jsr targets must land inside some routine, and every code word must
  /// decode.  Returns the first *strict* finding of validateImage() (see
  /// binary/Validator.h), or std::nullopt if the image is well formed.
  std::optional<std::string> verify() const;

  /// Bytewise structural equality (used by the transactional optimizer to
  /// check that a round's output still round-trips through the container
  /// format unchanged).
  bool operator==(const Image &) const = default;
};

/// Serializes \p Img into a byte vector (the "SPKX" container format).
std::vector<uint8_t> writeImage(const Image &Img);

/// Parses a byte vector produced by writeImage, reporting structured
/// errors: a container defect yields a Status with a stable ErrCode and
/// the byte offset at which parsing stopped.  Semantic validation is a
/// separate concern (validateImage in binary/Validator.h): a container-
/// well-formed image always loads, even if its contents are garbage, so
/// the CFG builder can quarantine the bad parts instead of rejecting the
/// whole image.
Expected<Image> loadImage(const std::vector<uint8_t> &Bytes);

/// Reads and parses the image at \p Path.  Adds I/O-level error codes
/// (IoOpen, IoRead, EmptyFile) and prefixes every error message with the
/// path.
Expected<Image> loadImageFile(const std::string &Path);

/// Parses a byte vector produced by writeImage.  Returns std::nullopt and
/// sets \p ErrorOut (if non-null) on malformed input.  Convenience
/// wrapper around loadImage.
std::optional<Image> readImage(const std::vector<uint8_t> &Bytes,
                               std::string *ErrorOut = nullptr);

/// Writes \p Img to \p Path.  Returns false on I/O failure.
bool writeImageFile(const Image &Img, const std::string &Path);

/// Reads an image from \p Path.  Convenience wrapper around
/// loadImageFile.
std::optional<Image> readImageFile(const std::string &Path,
                                   std::string *ErrorOut = nullptr);

/// Prints a textual disassembly of the whole image to \p Out, with symbol
/// labels and jump-table contents (a smoke-testable "spike-objdump").
void disassemble(const Image &Img, std::string &Out);

} // namespace spike

#endif // SPIKE_BINARY_IMAGE_H
