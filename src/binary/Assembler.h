//===- binary/Assembler.h - Text assembler --------------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass text assembler for the synthetic ISA.
///
/// The accepted dialect is a superset of what disassemble() prints, so
/// `parseAssembly(disassembled image)` round-trips (property-tested).
/// Grammar, line oriented ('#' or ';' start comments):
///
///   .start <addr|name>          program entry point
///   .data <int> <int> ...       append data-section words
///   .table <n>: <t> <t> ...     jump table n's targets (addr or label)
///   name:                       routine symbol (primary; starts routine)
///   name (secondary entry):     secondary entrance symbol
///   name (address taken):       primary symbol, address-taken
///   .Llabel:                    local label (no symbol-table entry)
///   <addr>: <instruction>       optional numeric address prefix
///
/// Instructions use the printer's operand syntax:
///
///   add t0, t1, t2      addi t0, t1, -5     lda t0, 99
///   mov t0, t1          ldq t0, 8(sp)       stq t0, 8(sp)
///   br <target>         beq t0, <target>    jsr <target>
///   jsr_r (pv)          jmp_r (t0)          jmp_tab t0, table:2
///   ret                 nop                 halt v0
///
/// Branch/call targets may be numeric absolute addresses (what the
/// disassembler prints), label names, or symbol names.  The first
/// primary symbol defaults to the entry point when no .start is given.
/// Local labels start with ".L" and create no symbol-table entries.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_BINARY_ASSEMBLER_H
#define SPIKE_BINARY_ASSEMBLER_H

#include "binary/Image.h"

#include <optional>
#include <string>

namespace spike {

/// Assembles \p Source into an image.  On failure, returns std::nullopt
/// and (when \p ErrorOut is non-null) a "line N: message" description.
std::optional<Image> parseAssembly(const std::string &Source,
                                   std::string *ErrorOut = nullptr);

} // namespace spike

#endif // SPIKE_BINARY_ASSEMBLER_H
