//===- binary/ProgramBuilder.cpp - Assembler-style image builder ---------===//

#include "binary/ProgramBuilder.h"

#include "isa/Encoding.h"

#include <cassert>

using namespace spike;

ProgramBuilder::LabelId ProgramBuilder::makeLabel() {
  LabelAddresses.push_back(std::nullopt);
  return LabelId(LabelAddresses.size() - 1);
}

void ProgramBuilder::bind(LabelId Label) {
  assert(Label < LabelAddresses.size() && "unknown label");
  assert(!LabelAddresses[Label] && "label bound twice");
  LabelAddresses[Label] = currentAddress();
}

void ProgramBuilder::beginRoutine(const std::string &Name,
                                  bool AddressTaken) {
  Symbol Sym;
  Sym.Name = Name;
  Sym.Address = currentAddress();
  Sym.AddressTaken = AddressTaken;
  Symbols.push_back(Sym);
  RoutineAddresses[Name] = Sym.Address;
  if (EntryName.empty())
    EntryName = Name;
}

void ProgramBuilder::addSecondaryEntry(const std::string &Name) {
  assert(!Symbols.empty() && "secondary entry before any routine");
  Symbol Sym;
  Sym.Name = Name;
  Sym.Address = currentAddress();
  Sym.Secondary = true;
  Symbols.push_back(Sym);
  RoutineAddresses[Name] = Sym.Address;
}

void ProgramBuilder::emit(const Instruction &Inst) {
  Code.push_back(encodeInstruction(Inst));
}

void ProgramBuilder::emitBr(LabelId Target) {
  LabelFixups.push_back({currentAddress(), Target, /*Relative=*/true});
  emit(inst::br(0));
}

void ProgramBuilder::emitCondBr(Opcode Op, unsigned Ra, LabelId Target) {
  LabelFixups.push_back({currentAddress(), Target, /*Relative=*/true});
  emit(inst::condBr(Op, Ra, 0));
}

void ProgramBuilder::emitCall(const std::string &Callee) {
  CallFixups.push_back({currentAddress(), Callee, /*IsAddressLoad=*/false});
  emit(inst::jsr(0));
}

void ProgramBuilder::emitCallTo(LabelId Target) {
  LabelFixups.push_back({currentAddress(), Target, /*Relative=*/false});
  emit(inst::jsr(0));
}

unsigned ProgramBuilder::emitTableJump(unsigned IndexReg,
                                       const std::vector<LabelId> &Targets) {
  assert(!Targets.empty() && "jump table must have at least one target");
  unsigned TableIndex = unsigned(JumpTables.size());
  JumpTables.emplace_back();
  JumpTables.back().Targets.resize(Targets.size(), 0);
  TableFixups.push_back({TableIndex, Targets});
  emit(inst::jmpTab(IndexReg, int32_t(TableIndex)));
  return TableIndex;
}

void ProgramBuilder::emitLoadRoutineAddress(unsigned Rc,
                                            const std::string &Callee) {
  CallFixups.push_back({currentAddress(), Callee, /*IsAddressLoad=*/true});
  emit(inst::lda(Rc, 0));
}

size_t ProgramBuilder::addData(int64_t Value) {
  Data.push_back(Value);
  return Data.size() - 1;
}

void ProgramBuilder::setEntry(const std::string &Name) { EntryName = Name; }

std::optional<Image> ProgramBuilder::buildChecked(std::string *ErrorOut) {
  auto Fail = [&](const std::string &Message) -> std::optional<Image> {
    if (ErrorOut)
      *ErrorOut = Message;
    return std::nullopt;
  };

  auto PatchImm = [&](uint64_t Address, int32_t Imm) {
    std::optional<Instruction> Inst = decodeInstruction(Code[Address]);
    assert(Inst && "builder emitted an undecodable word");
    Inst->Imm = Imm;
    Code[Address] = encodeInstruction(*Inst);
  };

  for (const LabelFixup &Fixup : LabelFixups) {
    if (!LabelAddresses[Fixup.Label])
      return Fail("unbound label " + std::to_string(Fixup.Label));
    uint64_t Target = *LabelAddresses[Fixup.Label];
    int64_t Imm = Fixup.Relative
                      ? int64_t(Target) - int64_t(Fixup.Address) - 1
                      : int64_t(Target);
    PatchImm(Fixup.Address, int32_t(Imm));
  }

  for (const CallFixup &Fixup : CallFixups) {
    auto It = RoutineAddresses.find(Fixup.Callee);
    if (It == RoutineAddresses.end())
      return Fail("call to unknown routine '" + Fixup.Callee + "'");
    PatchImm(Fixup.Address, int32_t(It->second));
  }

  for (const TableFixup &Fixup : TableFixups) {
    JumpTable &Table = JumpTables[Fixup.TableIndex];
    for (size_t I = 0; I < Fixup.Targets.size(); ++I) {
      if (!LabelAddresses[Fixup.Targets[I]])
        return Fail("unbound jump-table label");
      Table.Targets[I] = *LabelAddresses[Fixup.Targets[I]];
    }
  }

  Image Img;
  Img.Code = Code;
  Img.Symbols = Symbols;
  Img.JumpTables = JumpTables;
  Img.Data = Data;
  if (!EntryName.empty()) {
    auto It = RoutineAddresses.find(EntryName);
    if (It == RoutineAddresses.end())
      return Fail("entry routine '" + EntryName + "' not defined");
    Img.EntryAddress = It->second;
  }
  Img.finalize();
  if (std::optional<std::string> Problem = Img.verify())
    return Fail("built image fails verification: " + *Problem);
  return Img;
}

Image ProgramBuilder::build() {
  std::string Error;
  std::optional<Image> Img = buildChecked(&Error);
  assert(Img && "ProgramBuilder::build failed; use buildChecked for details");
  if (!Img)
    return Image(); // Unreachable with asserts on; keeps release builds safe.
  return std::move(*Img);
}
