//===- binary/Validator.h - Semantic image validation ---------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic validation of a loaded image, with routine attribution.
///
/// readImage() checks only the container: sections present, counts sane.
/// Everything the CFG builder *trusts* beyond that — symbol addresses
/// inside the code section, primary symbols sorted and distinct, jump
/// tables non-empty with in-range targets, every jmp_tab index naming an
/// existing table, jsr targets landing inside some routine, annotation
/// addresses resolving to the matching instruction kind, every code word
/// decoding — is checked here, and each defect is attributed to the
/// routine that contains it when one does.
///
/// Findings come in two grades.  *Strict* findings are what
/// Image::verify() reports: the image violates an invariant the analysis
/// relies on.  Non-strict findings are advisory (a dropped annotation,
/// code outside any routine).  Independently, a finding may *quarantine*
/// a routine: the CFG builder then models that routine like the paper's
/// unknowable code (Section 3.5) — worst-case summaries, no
/// transformation — instead of rejecting the whole image, so analysis of
/// the healthy remainder proceeds.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_BINARY_VALIDATOR_H
#define SPIKE_BINARY_VALIDATOR_H

#include "binary/Image.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spike {

/// One semantic defect found in an image.
struct ValidationFinding {
  ErrCode Code = ErrCode::None;

  /// Instruction-word address the defect refers to, or -1 (image-level).
  int64_t Address = -1;

  /// Name of the routine the defect lies in; empty if not attributable.
  std::string RoutineName;

  /// True if the image violates an invariant the analysis relies on;
  /// Image::verify() reports exactly the strict findings.
  bool Strict = false;

  /// True if the defect makes the containing routine unanalyzable: the
  /// CFG builder quarantines RoutineName instead of rejecting the image.
  bool Quarantines = false;

  std::string Message;
};

/// The result of validating one image.
struct ValidationReport {
  std::vector<ValidationFinding> Findings;

  /// True when nothing at all was found.
  bool ok() const { return Findings.empty(); }

  /// True when no *strict* finding exists (advisory findings allowed).
  bool clean() const;

  /// The first strict finding, or nullptr.
  const ValidationFinding *firstStrict() const;

  size_t numStrict() const;
  size_t numQuarantining() const;

  /// True if some finding quarantines the named routine.
  bool quarantines(const std::string &RoutineName) const;
};

/// Validates \p Img.  Never crashes on arbitrary (container-well-formed)
/// images; every check is bounds-guarded.
ValidationReport validateImage(const Image &Img);

} // namespace spike

#endif // SPIKE_BINARY_VALIDATOR_H
