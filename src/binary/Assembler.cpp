//===- binary/Assembler.cpp - Text assembler -------------------------------===//

#include "binary/Assembler.h"

#include "isa/Encoding.h"
#include "isa/Registers.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

using namespace spike;

namespace {

/// One instruction line waiting for pass-2 encoding.
struct PendingInst {
  unsigned LineNo;
  uint64_t Address;
  std::string Mnemonic;
  std::vector<std::string> Operands;
};

/// A jump-table directive waiting for target resolution.
struct PendingTable {
  unsigned LineNo;
  size_t Index;
  std::vector<std::string> Targets;
};

/// The two-pass assembler state.
class Assembler {
public:
  std::optional<Image> run(const std::string &Source,
                           std::string *ErrorOut) {
    if (!passOne(Source) || !passTwo()) {
      if (ErrorOut)
        *ErrorOut = Error;
      return std::nullopt;
    }
    Img.finalize();
    if (std::optional<std::string> Problem = Img.verify()) {
      if (ErrorOut)
        *ErrorOut = "assembled image fails verification: " + *Problem;
      return std::nullopt;
    }
    return std::move(Img);
  }

private:
  bool fail(unsigned LineNo, const std::string &Message) {
    Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  }

  static std::string trim(const std::string &Text) {
    size_t Begin = Text.find_first_not_of(" \t\r");
    if (Begin == std::string::npos)
      return "";
    size_t End = Text.find_last_not_of(" \t\r");
    return Text.substr(Begin, End - Begin + 1);
  }

  static bool isInteger(const std::string &Token) {
    if (Token.empty())
      return false;
    size_t I = Token[0] == '-' ? 1 : 0;
    if (I == Token.size())
      return false;
    for (; I < Token.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Token[I])))
        return false;
    return true;
  }

  /// Splits "a, b, c" on commas and trims each piece.
  static std::vector<std::string> splitOperands(const std::string &Text) {
    std::vector<std::string> Out;
    std::string Current;
    for (char C : Text) {
      if (C == ',') {
        Out.push_back(trim(Current));
        Current.clear();
      } else {
        Current += C;
      }
    }
    Current = trim(Current);
    if (!Current.empty())
      Out.push_back(Current);
    return Out;
  }

  /// Splits on whitespace.
  static std::vector<std::string> splitWords(const std::string &Text) {
    std::vector<std::string> Out;
    std::istringstream Stream(Text);
    std::string Word;
    while (Stream >> Word)
      Out.push_back(Word);
    return Out;
  }

  bool passOne(const std::string &Source) {
    std::istringstream Stream(Source);
    std::string RawLine;
    unsigned LineNo = 0;
    while (std::getline(Stream, RawLine)) {
      ++LineNo;
      // Strip comments.
      size_t Hash = RawLine.find_first_of("#;");
      if (Hash != std::string::npos)
        RawLine.resize(Hash);
      std::string Line = trim(RawLine);
      if (Line.empty())
        continue;

      if (Line.rfind(".start", 0) == 0) {
        StartToken = trim(Line.substr(6));
        StartLine = LineNo;
        if (StartToken.empty())
          return fail(LineNo, ".start needs an address or name");
        continue;
      }
      if (Line.rfind(".data", 0) == 0) {
        for (const std::string &Word : splitWords(Line.substr(5))) {
          if (!isInteger(Word))
            return fail(LineNo, "bad data word '" + Word + "'");
          Img.Data.push_back(std::strtoll(Word.c_str(), nullptr, 10));
        }
        continue;
      }
      if (Line.rfind(".table", 0) == 0) {
        std::string Rest = trim(Line.substr(6));
        size_t Colon = Rest.find(':');
        if (Colon == std::string::npos)
          return fail(LineNo, ".table needs 'index: targets'");
        std::string IndexToken = trim(Rest.substr(0, Colon));
        if (!isInteger(IndexToken))
          return fail(LineNo, "bad table index '" + IndexToken + "'");
        PendingTable Table;
        Table.LineNo = LineNo;
        Table.Index = size_t(std::strtoull(IndexToken.c_str(), nullptr, 10));
        Table.Targets = splitWords(Rest.substr(Colon + 1));
        if (Table.Targets.empty())
          return fail(LineNo, "jump table with no targets");
        Tables.push_back(std::move(Table));
        continue;
      }

      // Label / symbol definitions end with ':' and have nothing after,
      // modulo the "(secondary entry)" / "(address taken)" suffixes.
      if (Line.back() == ':') {
        std::string Name = trim(Line.substr(0, Line.size() - 1));
        bool Secondary = false, AddressTaken = false;
        auto StripSuffix = [&](const char *Suffix, bool &Flag) {
          size_t Pos = Name.find(Suffix);
          if (Pos == std::string::npos)
            return;
          Flag = true;
          Name = trim(Name.substr(0, Pos));
        };
        StripSuffix("(secondary entry)", Secondary);
        StripSuffix("(address taken)", AddressTaken);
        if (Name.empty())
          return fail(LineNo, "empty label name");
        if (Name.find_first_of(" \t") != std::string::npos)
          return fail(LineNo, "label '" + Name + "' contains spaces");
        if (Labels.count(Name))
          return fail(LineNo, "duplicate label '" + Name + "'");
        Labels[Name] = NextAddress;
        if (Name.rfind(".L", 0) != 0) {
          Symbol Sym;
          Sym.Name = Name;
          Sym.Address = NextAddress;
          Sym.Secondary = Secondary;
          Sym.AddressTaken = AddressTaken;
          Img.Symbols.push_back(Sym);
          if (FirstPrimary.empty() && !Secondary)
            FirstPrimary = Name;
        }
        continue;
      }

      // Instruction, with an optional "addr:" prefix from disassembly.
      std::string Body = Line;
      size_t Colon = Body.find(':');
      if (Colon != std::string::npos &&
          isInteger(trim(Body.substr(0, Colon))))
        Body = trim(Body.substr(Colon + 1));

      size_t Space = Body.find_first_of(" \t");
      PendingInst Inst;
      Inst.LineNo = LineNo;
      Inst.Address = NextAddress;
      Inst.Mnemonic = Space == std::string::npos
                          ? Body
                          : Body.substr(0, Space);
      if (Space != std::string::npos)
        Inst.Operands = splitOperands(trim(Body.substr(Space + 1)));
      Insts.push_back(std::move(Inst));
      ++NextAddress;
    }
    return true;
  }

  /// Looks up a mnemonic; returns NumOpcodes on failure.
  static unsigned findOpcode(const std::string &Mnemonic) {
    for (unsigned Op = 0; Op < NumOpcodes; ++Op)
      if (Mnemonic == opcodeInfo(Opcode(Op)).Name)
        return Op;
    return NumOpcodes;
  }

  bool parseReg(const PendingInst &Inst, const std::string &Token,
                unsigned &RegOut) {
    RegOut = parseRegName(Token.c_str());
    if (RegOut >= NumIntRegs)
      return fail(Inst.LineNo, "bad register '" + Token + "'");
    return true;
  }

  bool parseImm(const PendingInst &Inst, const std::string &Token,
                int64_t &Out) {
    if (!isInteger(Token))
      return fail(Inst.LineNo, "bad immediate '" + Token + "'");
    Out = std::strtoll(Token.c_str(), nullptr, 10);
    return true;
  }

  /// Resolves a branch/call target: absolute number, or label/symbol.
  bool resolveTarget(unsigned LineNo, const std::string &Token,
                     uint64_t &Out) {
    if (isInteger(Token)) {
      Out = uint64_t(std::strtoll(Token.c_str(), nullptr, 10));
      return true;
    }
    auto It = Labels.find(Token);
    if (It == Labels.end())
      return fail(LineNo, "unknown label '" + Token + "'");
    Out = It->second;
    return true;
  }

  /// Parses "disp(reg)" memory operands.
  bool parseMem(const PendingInst &Inst, const std::string &Token,
                int64_t &Disp, unsigned &Base) {
    size_t Open = Token.find('(');
    size_t Close = Token.find(')');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open)
      return fail(Inst.LineNo, "bad memory operand '" + Token + "'");
    std::string DispToken = trim(Token.substr(0, Open));
    if (DispToken.empty())
      DispToken = "0";
    if (!parseImm(Inst, DispToken, Disp))
      return false;
    return parseReg(Inst,
                    trim(Token.substr(Open + 1, Close - Open - 1)), Base);
  }

  /// Parses "(reg)" operands of indirect jumps/calls.
  bool parseParenReg(const PendingInst &Inst, const std::string &Token,
                     unsigned &RegOut) {
    if (Token.size() < 3 || Token.front() != '(' || Token.back() != ')')
      return fail(Inst.LineNo, "expected '(reg)', got '" + Token + "'");
    return parseReg(Inst, trim(Token.substr(1, Token.size() - 2)), RegOut);
  }

  bool wantOperands(const PendingInst &Inst, size_t Count) {
    if (Inst.Operands.size() == Count)
      return true;
    return fail(Inst.LineNo, Inst.Mnemonic + " expects " +
                                 std::to_string(Count) + " operand(s)");
  }

  bool encodeOne(const PendingInst &Pending) {
    unsigned OpIndex = findOpcode(Pending.Mnemonic);
    if (OpIndex == NumOpcodes)
      return fail(Pending.LineNo,
                  "unknown mnemonic '" + Pending.Mnemonic + "'");
    Opcode Op = Opcode(OpIndex);
    Instruction Inst;
    Inst.Op = Op;
    unsigned Ra = 0, Rb = 0, Rc = 0;
    int64_t Imm = 0;
    uint64_t Target = 0;

    switch (opcodeInfo(Op).Format) {
    case OperandFormat::None:
      if (!wantOperands(Pending, 0))
        return false;
      break;
    case OperandFormat::RRR:
      if (!wantOperands(Pending, 3) ||
          !parseReg(Pending, Pending.Operands[0], Rc) ||
          !parseReg(Pending, Pending.Operands[1], Ra) ||
          !parseReg(Pending, Pending.Operands[2], Rb))
        return false;
      Inst.Rc = uint8_t(Rc);
      Inst.Ra = uint8_t(Ra);
      Inst.Rb = uint8_t(Rb);
      break;
    case OperandFormat::RRI:
      if (!wantOperands(Pending, 3) ||
          !parseReg(Pending, Pending.Operands[0], Rc) ||
          !parseReg(Pending, Pending.Operands[1], Ra) ||
          !parseImm(Pending, Pending.Operands[2], Imm))
        return false;
      Inst.Rc = uint8_t(Rc);
      Inst.Ra = uint8_t(Ra);
      Inst.Imm = int32_t(Imm);
      break;
    case OperandFormat::RI:
      // lda accepts a label/symbol name as well as a number, so address
      // loads ("lda pv, helper") can be written symbolically.
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Rc) ||
          !resolveTarget(Pending.LineNo, Pending.Operands[1], Target))
        return false;
      Inst.Rc = uint8_t(Rc);
      Inst.Imm = int32_t(int64_t(Target));
      break;
    case OperandFormat::RR:
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Rc) ||
          !parseReg(Pending, Pending.Operands[1], Ra))
        return false;
      Inst.Rc = uint8_t(Rc);
      Inst.Ra = uint8_t(Ra);
      break;
    case OperandFormat::Load:
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Rc) ||
          !parseMem(Pending, Pending.Operands[1], Imm, Rb))
        return false;
      Inst.Rc = uint8_t(Rc);
      Inst.Rb = uint8_t(Rb);
      Inst.Imm = int32_t(Imm);
      break;
    case OperandFormat::Store:
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Ra) ||
          !parseMem(Pending, Pending.Operands[1], Imm, Rb))
        return false;
      Inst.Ra = uint8_t(Ra);
      Inst.Rb = uint8_t(Rb);
      Inst.Imm = int32_t(Imm);
      break;
    case OperandFormat::BranchDisp:
      if (!wantOperands(Pending, 1) ||
          !resolveTarget(Pending.LineNo, Pending.Operands[0], Target))
        return false;
      Inst.Imm = int32_t(int64_t(Target) - int64_t(Pending.Address) - 1);
      break;
    case OperandFormat::CondBranch:
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Ra) ||
          !resolveTarget(Pending.LineNo, Pending.Operands[1], Target))
        return false;
      Inst.Ra = uint8_t(Ra);
      Inst.Imm = int32_t(int64_t(Target) - int64_t(Pending.Address) - 1);
      break;
    case OperandFormat::CallAbs:
      if (!wantOperands(Pending, 1) ||
          !resolveTarget(Pending.LineNo, Pending.Operands[0], Target))
        return false;
      Inst.Imm = int32_t(Target);
      break;
    case OperandFormat::CallReg:
    case OperandFormat::RegJump:
      if (!wantOperands(Pending, 1) ||
          !parseParenReg(Pending, Pending.Operands[0], Rb))
        return false;
      Inst.Rb = uint8_t(Rb);
      break;
    case OperandFormat::TableJump: {
      if (!wantOperands(Pending, 2) ||
          !parseReg(Pending, Pending.Operands[0], Ra))
        return false;
      const std::string &Token = Pending.Operands[1];
      if (Token.rfind("table:", 0) != 0 || !isInteger(Token.substr(6)))
        return fail(Pending.LineNo,
                    "expected 'table:<n>', got '" + Token + "'");
      Inst.Ra = uint8_t(Ra);
      Inst.Imm = int32_t(std::strtoll(Token.c_str() + 6, nullptr, 10));
      break;
    }
    case OperandFormat::HaltFmt:
      if (!wantOperands(Pending, 1) ||
          !parseReg(Pending, Pending.Operands[0], Ra))
        return false;
      Inst.Ra = uint8_t(Ra);
      break;
    }

    Img.Code.push_back(encodeInstruction(Inst));
    return true;
  }

  bool passTwo() {
    for (const PendingInst &Pending : Insts)
      if (!encodeOne(Pending))
        return false;

    // Jump tables: size the table list, resolve targets.
    size_t MaxIndex = 0;
    for (const PendingTable &Table : Tables)
      MaxIndex = std::max(MaxIndex, Table.Index + 1);
    Img.JumpTables.resize(MaxIndex);
    for (const PendingTable &Table : Tables) {
      JumpTable &Out = Img.JumpTables[Table.Index];
      for (const std::string &Token : Table.Targets) {
        uint64_t Target = 0;
        if (!resolveTarget(Table.LineNo, Token, Target))
          return false;
        Out.Targets.push_back(Target);
      }
    }

    // Entry point: .start value, else the first primary symbol, else 0.
    if (!StartToken.empty()) {
      uint64_t Target = 0;
      if (!resolveTarget(StartLine, StartToken, Target))
        return false;
      Img.EntryAddress = Target;
    } else if (!FirstPrimary.empty()) {
      Img.EntryAddress = Labels.at(FirstPrimary);
    }
    return true;
  }

  Image Img;
  std::string Error;
  std::map<std::string, uint64_t> Labels;
  std::vector<PendingInst> Insts;
  std::vector<PendingTable> Tables;
  std::string StartToken;
  unsigned StartLine = 0;
  std::string FirstPrimary;
  uint64_t NextAddress = 0;
};

} // namespace

std::optional<Image> spike::parseAssembly(const std::string &Source,
                                          std::string *ErrorOut) {
  Assembler Asm;
  return Asm.run(Source, ErrorOut);
}
