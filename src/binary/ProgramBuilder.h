//===- binary/ProgramBuilder.h - Assembler-style image builder -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for constructing Images in tests, examples, and the
/// synthetic program generators.
///
/// The builder provides labels with fixups for branch displacements,
/// by-name call targets resolved at build() time (playing the role of the
/// linker), and jump-table creation for multiway branches.  All structural
/// mistakes (unbound labels, unknown callees) are programmer errors and
/// are reported via buildChecked() or trapped by assertions in build().
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_BINARY_PROGRAMBUILDER_H
#define SPIKE_BINARY_PROGRAMBUILDER_H

#include "binary/Image.h"
#include "isa/Instruction.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spike {

/// Incrementally assembles an Image.
class ProgramBuilder {
public:
  /// Opaque label handle.
  using LabelId = unsigned;

  /// Creates a fresh, unbound label.
  LabelId makeLabel();

  /// Binds \p Label to the current emission address.  A label may be bound
  /// only once.
  void bind(LabelId Label);

  /// Starts a new routine named \p Name at the current address and adds
  /// its primary entry symbol.
  void beginRoutine(const std::string &Name, bool AddressTaken = false);

  /// Adds a secondary entrance to the current routine at the current
  /// address (routines with multiple entrances; Table 3).
  void addSecondaryEntry(const std::string &Name);

  /// Appends \p Inst verbatim.
  void emit(const Instruction &Inst);

  /// Appends an unconditional branch to \p Target.
  void emitBr(LabelId Target);

  /// Appends a conditional branch (\p Op must be a conditional branch
  /// opcode) on register \p Ra to \p Target.
  void emitCondBr(Opcode Op, unsigned Ra, LabelId Target);

  /// Appends a direct call to the routine named \p Callee (resolved when
  /// the image is built, like a linker resolving a relocation).
  void emitCall(const std::string &Callee);

  /// Appends a direct call to a label (e.g. a secondary entry).
  void emitCallTo(LabelId Target);

  /// Appends a multiway branch on \p IndexReg whose jump table holds the
  /// given \p Targets; returns the table index.
  unsigned emitTableJump(unsigned IndexReg,
                         const std::vector<LabelId> &Targets);

  /// Appends an "lda Rc, <address of Callee>" whose immediate is fixed up
  /// to the callee's entry address (for building indirect calls).
  void emitLoadRoutineAddress(unsigned Rc, const std::string &Callee);

  /// Returns the next emission address.
  uint64_t currentAddress() const { return uint64_t(Code.size()); }

  /// Appends a word to the data section; returns its data index.
  size_t addData(int64_t Value);

  /// Selects the program entry routine by name (defaults to the first
  /// routine if never called).
  void setEntry(const std::string &Name);

  /// Resolves all fixups and returns the finished image.  Returns
  /// std::nullopt and sets \p ErrorOut on unbound labels or unresolved
  /// callee names.
  std::optional<Image> buildChecked(std::string *ErrorOut = nullptr);

  /// Like buildChecked() but asserts on failure; for tests and generators
  /// whose input is trusted.
  Image build();

private:
  struct LabelFixup {
    uint64_t Address;  ///< Instruction that needs its Imm patched.
    LabelId Label;     ///< Branch target.
    bool Relative;     ///< Displacement (branch) vs absolute (table/lda).
  };

  struct CallFixup {
    uint64_t Address;
    std::string Callee;
    bool IsAddressLoad; ///< Patch an lda, not a jsr.
  };

  struct TableFixup {
    unsigned TableIndex;
    std::vector<LabelId> Targets;
  };

  std::vector<uint64_t> Code;
  std::vector<Symbol> Symbols;
  std::vector<JumpTable> JumpTables;
  std::vector<int64_t> Data;
  std::vector<std::optional<uint64_t>> LabelAddresses;
  std::vector<LabelFixup> LabelFixups;
  std::vector<CallFixup> CallFixups;
  std::vector<TableFixup> TableFixups;
  std::map<std::string, uint64_t> RoutineAddresses;
  std::string EntryName;
};

} // namespace spike

#endif // SPIKE_BINARY_PROGRAMBUILDER_H
