//===- binary/Validator.cpp - Semantic image validation -------------------===//

#include "binary/Validator.h"

#include "telemetry/Telemetry.h"

#include "isa/Encoding.h"

#include <algorithm>

using namespace spike;

bool ValidationReport::clean() const {
  return firstStrict() == nullptr;
}

const ValidationFinding *ValidationReport::firstStrict() const {
  for (const ValidationFinding &F : Findings)
    if (F.Strict)
      return &F;
  return nullptr;
}

size_t ValidationReport::numStrict() const {
  size_t N = 0;
  for (const ValidationFinding &F : Findings)
    N += F.Strict;
  return N;
}

size_t ValidationReport::numQuarantining() const {
  size_t N = 0;
  for (const ValidationFinding &F : Findings)
    N += F.Quarantines;
  return N;
}

bool ValidationReport::quarantines(const std::string &RoutineName) const {
  for (const ValidationFinding &F : Findings)
    if (F.Quarantines && F.RoutineName == RoutineName)
      return true;
  return false;
}

namespace {

/// The routine partition the CFG builder will use, reproduced here so
/// findings can be attributed: in-range primary symbols, sorted by
/// address, first-at-address wins.  Falls back to one anonymous routine
/// when no primary is usable (matching buildProgram).
struct Partition {
  struct Entry {
    uint64_t Begin = 0;
    uint64_t End = 0;
    std::string Name;
  };
  std::vector<Entry> Routines;

  /// Index of the routine containing \p Address, or -1 (gap / no code).
  int32_t ownerOf(uint64_t Address) const {
    auto It = std::upper_bound(
        Routines.begin(), Routines.end(), Address,
        [](uint64_t A, const Entry &E) { return A < E.Begin; });
    if (It == Routines.begin())
      return -1;
    --It;
    if (Address >= It->End)
      return -1;
    return int32_t(It - Routines.begin());
  }
};

Partition makePartition(const Image &Img) {
  Partition Part;
  std::vector<const Symbol *> Primaries;
  for (const Symbol &Sym : Img.Symbols)
    if (!Sym.Secondary && Sym.Address < Img.Code.size())
      Primaries.push_back(&Sym);
  std::stable_sort(Primaries.begin(), Primaries.end(),
                   [](const Symbol *A, const Symbol *B) {
                     return A->Address < B->Address;
                   });
  Primaries.erase(std::unique(Primaries.begin(), Primaries.end(),
                              [](const Symbol *A, const Symbol *B) {
                                return A->Address == B->Address;
                              }),
                  Primaries.end());
  if (Primaries.empty()) {
    if (!Img.Code.empty())
      Part.Routines.push_back({0, Img.Code.size(), "<anon>"});
    return Part;
  }
  for (size_t I = 0; I < Primaries.size(); ++I)
    Part.Routines.push_back(
        {Primaries[I]->Address,
         I + 1 < Primaries.size() ? Primaries[I + 1]->Address
                                  : Img.Code.size(),
         Primaries[I]->Name});
  return Part;
}

class ImageValidator {
public:
  explicit ImageValidator(const Image &Img)
      : Img(Img), Part(makePartition(Img)) {}

  ValidationReport run() {
    checkSymbols();
    checkEntry();
    checkJumpTables();
    checkCode();
    checkGap();
    checkAnnotations();
    return std::move(Report);
  }

private:
  void add(ErrCode Code, int64_t Address, bool Strict, bool Quarantines,
           std::string Message) {
    ValidationFinding F;
    F.Code = Code;
    F.Address = Address;
    F.Strict = Strict;
    F.Message = std::move(Message);
    if (Quarantines && Address >= 0) {
      int32_t Owner = Part.ownerOf(uint64_t(Address));
      if (Owner >= 0) {
        F.RoutineName = Part.Routines[Owner].Name;
        F.Quarantines = true;
      }
    }
    Report.Findings.push_back(std::move(F));
  }

  void checkSymbols() {
    for (const Symbol &Sym : Img.Symbols)
      if (Sym.Address >= Img.Code.size())
        add(ErrCode::SymbolOutOfRange, int64_t(Sym.Address),
            /*Strict=*/true, /*Quarantines=*/false,
            "symbol '" + Sym.Name + "' address out of range");

    // Primary ordering and uniqueness: the partition sorts and dedups
    // defensively, but an unsorted or duplicated table means the producer
    // violated the format contract, which verify() must report.
    uint64_t Prev = 0;
    bool First = true;
    for (const Symbol &Sym : Img.Symbols) {
      if (Sym.Secondary || Sym.Address >= Img.Code.size())
        continue;
      if (!First && Sym.Address < Prev)
        add(ErrCode::SymbolOrder, int64_t(Sym.Address), /*Strict=*/true,
            /*Quarantines=*/false,
            "primary symbol '" + Sym.Name +
                "' out of address order in the symbol table");
      if (!First && Sym.Address == Prev)
        add(ErrCode::DuplicateSymbol, int64_t(Sym.Address),
            /*Strict=*/true, /*Quarantines=*/false,
            "primary symbol '" + Sym.Name +
                "' duplicates an earlier routine address");
      Prev = Sym.Address;
      First = false;
    }
  }

  void checkEntry() {
    if (Img.Symbols.empty())
      return;
    if (Img.EntryAddress >= Img.Code.size())
      add(ErrCode::EntryOutOfRange, int64_t(Img.EntryAddress),
          /*Strict=*/true, /*Quarantines=*/false,
          "entry address out of range");
    else if (Part.ownerOf(Img.EntryAddress) < 0)
      add(ErrCode::EntryOutOfRange, int64_t(Img.EntryAddress),
          /*Strict=*/false, /*Quarantines=*/false,
          "entry address falls outside every routine");
  }

  void checkJumpTables() {
    for (size_t TableIndex = 0; TableIndex < Img.JumpTables.size();
         ++TableIndex) {
      const JumpTable &Table = Img.JumpTables[TableIndex];
      if (Table.Targets.empty())
        add(ErrCode::EmptyJumpTable, /*Address=*/-1, /*Strict=*/true,
            /*Quarantines=*/false,
            "jump table " + std::to_string(TableIndex) + " is empty");
      for (uint64_t Target : Table.Targets)
        if (Target >= Img.Code.size()) {
          add(ErrCode::JumpTableTargetOutOfRange, /*Address=*/-1,
              /*Strict=*/true, /*Quarantines=*/false,
              "jump table " + std::to_string(TableIndex) +
                  " target out of range");
          break;
        }
    }
  }

  /// True if the table exists but is unusable (empty or with targets
  /// outside the code section).
  bool tableBad(uint64_t TableIndex) const {
    const JumpTable &Table = Img.JumpTables[TableIndex];
    if (Table.Targets.empty())
      return true;
    for (uint64_t Target : Table.Targets)
      if (Target >= Img.Code.size())
        return true;
    return false;
  }

  void checkCode() {
    for (uint64_t Address = 0; Address < Img.Code.size(); ++Address) {
      std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
      if (!Inst) {
        add(ErrCode::UndecodableOpcode, int64_t(Address), /*Strict=*/true,
            /*Quarantines=*/true,
            "undecodable instruction at address " + std::to_string(Address));
        continue;
      }
      if (Inst->Op == Opcode::JmpTab) {
        uint64_t TableIndex = uint64_t(uint32_t(Inst->Imm));
        if (TableIndex >= Img.JumpTables.size())
          add(ErrCode::DanglingJumpTableIndex, int64_t(Address),
              /*Strict=*/true, /*Quarantines=*/true,
              "jmp_tab at address " + std::to_string(Address) +
                  " names a missing jump table");
        else if (tableBad(TableIndex))
          add(Img.JumpTables[TableIndex].Targets.empty()
                  ? ErrCode::EmptyJumpTable
                  : ErrCode::JumpTableTargetOutOfRange,
              int64_t(Address), /*Strict=*/true, /*Quarantines=*/true,
              "jmp_tab at address " + std::to_string(Address) +
                  " references unusable jump table " +
                  std::to_string(TableIndex));
      }
      if (Inst->Op == Opcode::Jsr) {
        if (Inst->Imm < 0 || uint64_t(Inst->Imm) >= Img.Code.size())
          add(ErrCode::CallTargetOutOfRange, int64_t(Address),
              /*Strict=*/true, /*Quarantines=*/true,
              "jsr at address " + std::to_string(Address) +
                  " targets outside the code section");
        else if (Part.ownerOf(uint64_t(Inst->Imm)) < 0)
          add(ErrCode::CallTargetOutOfRange, int64_t(Address),
              /*Strict=*/true, /*Quarantines=*/true,
              "jsr at address " + std::to_string(Address) +
                  " targets code outside every routine");
      }
    }
  }

  void checkGap() {
    if (Img.Code.empty() || Part.Routines.empty())
      return;
    if (Part.Routines.front().Begin > 0)
      add(ErrCode::CodeOutsideRoutines, /*Address=*/0, /*Strict=*/false,
          /*Quarantines=*/false,
          std::to_string(Part.Routines.front().Begin) +
              " code words precede the first routine");
  }

  /// True if the word at \p Address decodes to an instruction matching
  /// \p Pred.
  template <typename PredT> bool decodesTo(uint64_t Address, PredT Pred) {
    if (Address >= Img.Code.size())
      return false;
    std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
    return Inst && Pred(*Inst);
  }

  void checkAnnotations() {
    for (const IndirectCallAnnotation &Annot : Img.CallAnnotations)
      if (!decodesTo(Annot.Address, [](const Instruction &Inst) {
            return opcodeInfo(Inst.Op).IsIndirectCall;
          }))
        add(ErrCode::AnnotationUnresolved, int64_t(Annot.Address),
            /*Strict=*/false, /*Quarantines=*/false,
            "call annotation at address " + std::to_string(Annot.Address) +
                " does not resolve to an indirect call");
    for (const IndirectJumpAnnotation &Annot : Img.JumpAnnotations)
      if (!decodesTo(Annot.Address, [](const Instruction &Inst) {
            return opcodeInfo(Inst.Op).IsUnresolvedJump;
          }))
        add(ErrCode::AnnotationUnresolved, int64_t(Annot.Address),
            /*Strict=*/false, /*Quarantines=*/false,
            "jump annotation at address " + std::to_string(Annot.Address) +
                " does not resolve to an indirect jump");
  }

  const Image &Img;
  Partition Part;
  ValidationReport Report;
};

} // namespace

ValidationReport spike::validateImage(const Image &Img) {
  telemetry::Span ValidateSpan("binary.validate");
  ValidationReport Report = ImageValidator(Img).run();
  if (telemetry::active()) {
    uint64_t Strict = 0, Quarantines = 0;
    for (const ValidationFinding &F : Report.Findings) {
      Strict += F.Strict;
      Quarantines += F.Quarantines;
    }
    telemetry::count("validate.findings", Report.Findings.size());
    telemetry::count("validate.strict_findings", Strict);
    telemetry::count("validate.quarantining_findings", Quarantines);
  }
  return Report;
}
