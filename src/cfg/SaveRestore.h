//===- cfg/SaveRestore.h - Callee-saved save/restore detection -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects which callee-saved registers a routine saves and restores.
///
/// Section 3.4: "after computing the MAY-USE, MAY-DEF, and MUST-DEF sets
/// for an entry node, Spike removes from those sets any callee-saved
/// registers saved and restored by the corresponding routine, preventing
/// callee-saved register definitions and uses within a routine from
/// propagating to the callers."
///
/// Detection is deliberately conservative: a register counts as saved and
/// restored only when every entrance block stores it to a stack slot
/// before any other def or use, and every exit block reloads it from the
/// same slot with no later redefinition.  Anything cleverer (shrink
/// wrapping, moves through other registers) is simply not filtered, which
/// is safe.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_CFG_SAVERESTORE_H
#define SPIKE_CFG_SAVERESTORE_H

#include "cfg/Program.h"
#include "support/RegSet.h"

#include <cstdint>
#include <vector>

namespace spike {

/// Where one callee-saved register is saved and restored.
struct SavedRegInfo {
  unsigned Reg = 0;
  int32_t Slot = 0;                     ///< sp-relative displacement.
  std::vector<uint64_t> SaveAddrs;      ///< One store per entrance.
  std::vector<uint64_t> RestoreAddrs;   ///< One load per exit.
};

/// The callee-saved save/restore summary of one routine.
struct SaveRestoreInfo {
  /// Registers proven saved-and-restored (the Section 3.4 filter set).
  RegSet Saved;

  /// Instruction-level details, for optimizations that delete or retarget
  /// the save/restore code (Figure 1(d)).
  std::vector<SavedRegInfo> Details;
};

/// Analyzes routine \p R of \p Prog.
SaveRestoreInfo analyzeSaveRestore(const Program &Prog, const Routine &R);

} // namespace spike

#endif // SPIKE_CFG_SAVERESTORE_H
