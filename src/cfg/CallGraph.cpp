//===- cfg/CallGraph.cpp - Whole-program call graph ------------------------===//

#include "cfg/CallGraph.h"

#include <algorithm>

using namespace spike;

CallGraph spike::buildCallGraph(const Program &Prog) {
  CallGraph Graph;
  size_t Count = Prog.Routines.size();
  Graph.Callees.resize(Count);
  Graph.Callers.resize(Count);
  Graph.HasIndirectCalls.assign(Count, false);
  Graph.SccId.assign(Count, 0);
  Graph.InCycle.assign(Count, false);
  Graph.Reachable.assign(Count, false);
  if (Count == 0)
    return Graph;

  // Adjacency (deduplicated), self-calls noted as cycles immediately.
  for (uint32_t R = 0; R < Count; ++R) {
    for (uint32_t Block : Prog.Routines[R].CallBlocks) {
      const BasicBlock &B = Prog.Routines[R].Blocks[Block];
      if (B.Term == TerminatorKind::IndirectCall) {
        Graph.HasIndirectCalls[R] = true;
        continue;
      }
      uint32_t Callee = uint32_t(B.CalleeRoutine);
      if (Callee == R)
        Graph.InCycle[R] = true;
      Graph.Callees[R].push_back(Callee);
    }
    std::sort(Graph.Callees[R].begin(), Graph.Callees[R].end());
    Graph.Callees[R].erase(
        std::unique(Graph.Callees[R].begin(), Graph.Callees[R].end()),
        Graph.Callees[R].end());
    for (uint32_t Callee : Graph.Callees[R])
      Graph.Callers[Callee].push_back(R);
  }
  for (auto &Callers : Graph.Callers) {
    std::sort(Callers.begin(), Callers.end());
    Callers.erase(std::unique(Callers.begin(), Callers.end()),
                  Callers.end());
  }

  // Iterative Tarjan SCC.
  std::vector<int32_t> Index(Count, -1), Low(Count, 0);
  std::vector<bool> OnStack(Count, false);
  std::vector<uint32_t> Stack;
  int32_t NextIndex = 0;
  struct Frame {
    uint32_t Node;
    size_t Child;
  };
  std::vector<Frame> Dfs;

  for (uint32_t Root = 0; Root < Count; ++Root) {
    if (Index[Root] >= 0)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Dfs.empty()) {
      Frame &Top = Dfs.back();
      if (Top.Child < Graph.Callees[Top.Node].size()) {
        uint32_t Next = Graph.Callees[Top.Node][Top.Child++];
        if (Index[Next] < 0) {
          Index[Next] = Low[Next] = NextIndex++;
          Stack.push_back(Next);
          OnStack[Next] = true;
          Dfs.push_back({Next, 0});
        } else if (OnStack[Next]) {
          Low[Top.Node] = std::min(Low[Top.Node], Index[Next]);
        }
        continue;
      }
      uint32_t Node = Top.Node;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[Node]);
      if (Low[Node] != Index[Node])
        continue;
      bool Nontrivial = Stack.back() != Node;
      for (;;) {
        uint32_t Member = Stack.back();
        Stack.pop_back();
        OnStack[Member] = false;
        Graph.SccId[Member] = Graph.NumSccs;
        if (Nontrivial)
          Graph.InCycle[Member] = true;
        if (Member == Node)
          break;
      }
      ++Graph.NumSccs;
    }
  }

  // Reachability from the roots.
  std::vector<uint32_t> Queue;
  auto AddRoot = [&](uint32_t R) {
    if (!Graph.Reachable[R]) {
      Graph.Reachable[R] = true;
      Queue.push_back(R);
    }
  };
  if (Prog.EntryRoutine >= 0)
    AddRoot(uint32_t(Prog.EntryRoutine));
  for (uint32_t R = 0; R < Count; ++R)
    if (Prog.Routines[R].AddressTaken || Prog.Routines[R].Quarantined ||
        Prog.Routines[R].CalledFromQuarantine)
      AddRoot(R);
  for (size_t Cursor = 0; Cursor < Queue.size(); ++Cursor)
    for (uint32_t Callee : Graph.Callees[Queue[Cursor]])
      AddRoot(Callee);

  return Graph;
}
