//===- cfg/Program.h - Decoded program, routines, basic blocks -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded whole-program model the analyses run over.
///
/// A Program is built from an Image by the CFG builder: the code section is
/// decoded, partitioned into routines at primary symbol addresses, and each
/// routine is split into basic blocks.  Following the paper, a basic block
/// is ended by a branch *or by a call instruction* ("the following
/// discussion assumes a basic block is ended by a call instruction"), so a
/// block contains at most one call, as its terminator.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_CFG_PROGRAM_H
#define SPIKE_CFG_PROGRAM_H

#include "binary/Image.h"
#include "binary/Validator.h"
#include "isa/CallingConv.h"
#include "isa/Instruction.h"
#include "support/RegSet.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spike {

/// How a basic block transfers control at its end.
enum class TerminatorKind : uint8_t {
  FallThrough,    ///< No terminator instruction; falls into the next block.
  Branch,         ///< Unconditional intra-routine branch.
  CondBranch,     ///< Conditional branch: target + fall-through.
  Call,           ///< Direct call; falls through to the return point.
  IndirectCall,   ///< Call through a register; falls through.
  Return,         ///< Routine exit.
  TableJump,      ///< Multiway branch through an extracted jump table.
  UnresolvedJump, ///< Indirect jump with unknown targets (Section 3.5).
  Halt,           ///< Program termination.
};

/// A basic block: the half-open instruction range [Begin, End).
struct BasicBlock {
  uint64_t Begin = 0;
  uint64_t End = 0;

  /// Intra-routine successor / predecessor block indices.  Call blocks
  /// have their return point (fall-through block) as successor; the
  /// interprocedural effect of the call is modelled by the analyses, not
  /// by CFG arcs.
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;

  TerminatorKind Term = TerminatorKind::FallThrough;

  /// For (direct) Call: target routine index, else -1.
  int32_t CalleeRoutine = -1;

  /// For Call: index into the callee's EntryAddresses for the targeted
  /// entrance, else -1.  (Calls may target secondary entrances.)
  int32_t CalleeEntry = -1;

  /// For TableJump: jump-table index in the image, else -1.
  int32_t JumpTableIndex = -1;

  /// Registers defined in the block (the call terminator's own def of ra
  /// is excluded; it is modelled on the call-return edge).
  RegSet Def;

  /// Registers used before being defined in the block (includes uses by
  /// the terminator itself, e.g. ret's use of ra or jsr_r's use of its
  /// target register).
  RegSet Ubd;

  /// Returns the number of instructions in the block.
  uint64_t size() const { return End - Begin; }

  /// Returns true if the block ends with a (direct or indirect) call.
  bool endsWithCall() const {
    return Term == TerminatorKind::Call ||
           Term == TerminatorKind::IndirectCall;
  }
};

/// Why a routine was collapsed to the paper's Section 3.5 unknowable
/// model.  Validation and Forced are the PR 2 quarantine family; Budget
/// is resource governance: the routine's SCC group blew its analysis
/// budget and was soundly degraded instead of aborting the run.
enum class DegradeReason : uint8_t {
  None = 0,   ///< Analyzed normally.
  Validation, ///< Semantic validation found the code unanalyzable.
  Forced,     ///< Forced by build options (fuzzer oracle, tests).
  Budget,     ///< Analysis budget exceeded (deadline/memory/iterations).
};

/// Stable lower-case name ("none", "validation", "forced", "budget").
inline const char *degradeReasonName(DegradeReason Reason) {
  switch (Reason) {
  case DegradeReason::None:
    return "none";
  case DegradeReason::Validation:
    return "validation";
  case DegradeReason::Forced:
    return "forced";
  case DegradeReason::Budget:
    return "budget";
  }
  return "unknown";
}

/// A routine: a contiguous instruction range with one or more entrances.
struct Routine {
  std::string Name;
  uint64_t Begin = 0;
  uint64_t End = 0;

  std::vector<BasicBlock> Blocks;

  /// Entrance addresses: EntryAddresses[0] is the primary entry; the rest
  /// are secondary entrances (extra symbols or call-targeted addresses).
  std::vector<uint64_t> EntryAddresses;

  /// Block index of each entrance (parallel to EntryAddresses).
  std::vector<uint32_t> EntryBlocks;

  /// Blocks ending with Return, in block-index order.
  std::vector<uint32_t> ExitBlocks;

  /// Blocks ending with a call, in block-index order (the routine's call
  /// sites).
  std::vector<uint32_t> CallBlocks;

  /// True if the routine's address escapes: it may be called indirectly
  /// and may return to unknown callers.
  bool AddressTaken = false;

  /// True if semantic validation found the routine's code unanalyzable
  /// (undecodable words, dangling jump-table indices, wild calls).  The
  /// routine is modelled like the paper's unknowable code: a single
  /// UnresolvedJump block with worst-case DEF/UBD, no exits, no call
  /// sites.  The optimizer must not transform it.
  bool Quarantined = false;

  /// Human-readable root cause for the quarantine (first finding).
  std::string QuarantineReason;

  /// Which family of cause set Quarantined.  Every consumer of the
  /// Quarantined bit treats all reasons identically (worst-case model,
  /// never transformed); the reason only steers diagnostics (SL011 vs
  /// SL013) and run-report accounting.
  DegradeReason Degrade = DegradeReason::None;

  /// True if a quarantined (or unowned) code region may call into this
  /// routine: a direct jsr from quarantined code names it, or quarantined
  /// code contains indirect calls / undecodable words, which may reach
  /// anything.  The analyses then assume *all* registers live at its
  /// exits — garbage code need not respect the calling standard.
  bool CalledFromQuarantine = false;

  /// Number of conditional + unconditional + multiway branch terminators
  /// (Table 3's "Branches/Routine" statistic).
  unsigned NumBranches = 0;

  /// Returns the number of entrances.
  unsigned numEntries() const { return unsigned(EntryAddresses.size()); }
};

/// Targets of one jump table (address list), decoded form.
struct JumpTableTargets {
  std::vector<uint64_t> Targets;
};

/// The decoded whole program.
struct Program {
  /// Decoded instructions, indexed by address.
  std::vector<Instruction> Insts;

  /// Jump tables copied from the image.
  std::vector<JumpTableTargets> JumpTables;

  /// Routines in address order.
  std::vector<Routine> Routines;

  /// Index of the routine containing the program entry point, or -1.
  int32_t EntryRoutine = -1;

  /// The calling standard in effect.
  CallingConv Conv;

  /// Section 3.5 side tables, keyed by instruction address (copied from
  /// the image by the CFG builder; annotations inside quarantined
  /// routines are dropped so degraded code is modelled worst-case).
  std::map<uint64_t, IndirectCallAnnotation> CallAnnotations;
  std::map<uint64_t, RegSet> JumpLiveAnnotations;

  /// The semantic-validation findings the builder acted on (quarantines,
  /// dropped symbols/annotations); kept for diagnostics (lint rule SL011).
  ValidationReport Validation;

  /// Returns the number of quarantined routines (all degrade reasons).
  uint64_t numQuarantined() const {
    uint64_t Count = 0;
    for (const Routine &R : Routines)
      Count += R.Quarantined;
    return Count;
  }

  /// Returns the number of routines degraded by resource governance.
  uint64_t numBudgetDegraded() const {
    uint64_t Count = 0;
    for (const Routine &R : Routines)
      Count += R.Degrade == DegradeReason::Budget;
    return Count;
  }

  /// Returns the annotation for the indirect call at \p Address, or null.
  const IndirectCallAnnotation *callAnnotationAt(uint64_t Address) const {
    auto It = CallAnnotations.find(Address);
    return It == CallAnnotations.end() ? nullptr : &It->second;
  }

  /// Returns the registers assumed live at the target of the unresolved
  /// jump at \p Address: its annotation, or (absent one) all registers.
  RegSet jumpTargetLive(uint64_t Address) const {
    auto It = JumpLiveAnnotations.find(Address);
    return It == JumpLiveAnnotations.end() ? RegSet::allBelow(NumIntRegs)
                                           : It->second;
  }

  /// Returns the total number of basic blocks (Table 2 statistic).
  uint64_t numBlocks() const {
    uint64_t Count = 0;
    for (const Routine &R : Routines)
      Count += R.Blocks.size();
    return Count;
  }

  /// Returns the total number of intra-routine CFG arcs, not counting
  /// call/return arcs.
  uint64_t numArcs() const {
    uint64_t Count = 0;
    for (const Routine &R : Routines)
      for (const BasicBlock &B : R.Blocks)
        Count += B.Succs.size();
    return Count;
  }
};

} // namespace spike

#endif // SPIKE_CFG_PROGRAM_H
