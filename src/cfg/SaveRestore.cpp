//===- cfg/SaveRestore.cpp - Callee-saved save/restore detection ---------===//

#include "cfg/SaveRestore.h"

using namespace spike;

namespace {

/// Scans an entrance block for "stq Reg, Slot(sp)" executed before any
/// other def or use of Reg.  Returns the store address, or -1.
int64_t findSave(const Program &Prog, const BasicBlock &Block, unsigned Reg,
                 int32_t *SlotOut) {
  unsigned Sp = Prog.Conv.SpReg;
  for (uint64_t Address = Block.Begin; Address < Block.End; ++Address) {
    const Instruction &Inst = Prog.Insts[Address];
    if (Inst.Op == Opcode::Stq && Inst.Ra == Reg && Inst.Rb == Sp) {
      *SlotOut = Inst.Imm;
      return int64_t(Address);
    }
    if (Inst.defs().contains(Reg) || Inst.uses().contains(Reg))
      return -1;
  }
  return -1;
}

/// Scans an exit block for the last "ldq Reg, Slot(sp)" with no later
/// redefinition of Reg.  Returns the load address, or -1.
int64_t findRestore(const Program &Prog, const BasicBlock &Block,
                    unsigned Reg, int32_t Slot) {
  unsigned Sp = Prog.Conv.SpReg;
  int64_t Found = -1;
  for (uint64_t Address = Block.Begin; Address < Block.End; ++Address) {
    const Instruction &Inst = Prog.Insts[Address];
    if (Inst.Op == Opcode::Ldq && Inst.Rc == Reg && Inst.Rb == Sp &&
        Inst.Imm == Slot) {
      Found = int64_t(Address);
      continue;
    }
    if (Inst.defs().contains(Reg))
      Found = -1;
  }
  return Found;
}

} // namespace

SaveRestoreInfo spike::analyzeSaveRestore(const Program &Prog,
                                          const Routine &R) {
  SaveRestoreInfo Info;
  if (R.EntryBlocks.empty() || R.ExitBlocks.empty())
    return Info;

  for (unsigned Reg : Prog.Conv.CalleeSaved) {
    SavedRegInfo Detail;
    Detail.Reg = Reg;
    bool HaveSlot = false;
    bool Ok = true;

    for (uint32_t EntryBlock : R.EntryBlocks) {
      int32_t Slot = 0;
      int64_t SaveAddr =
          findSave(Prog, R.Blocks[EntryBlock], Reg, &Slot);
      if (SaveAddr < 0 || (HaveSlot && Slot != Detail.Slot)) {
        Ok = false;
        break;
      }
      Detail.Slot = Slot;
      HaveSlot = true;
      Detail.SaveAddrs.push_back(uint64_t(SaveAddr));
    }
    if (!Ok || !HaveSlot)
      continue;

    for (uint32_t ExitBlock : R.ExitBlocks) {
      int64_t RestoreAddr =
          findRestore(Prog, R.Blocks[ExitBlock], Reg, Detail.Slot);
      if (RestoreAddr < 0) {
        Ok = false;
        break;
      }
      Detail.RestoreAddrs.push_back(uint64_t(RestoreAddr));
    }
    if (!Ok)
      continue;

    Info.Saved.insert(Reg);
    Info.Details.push_back(std::move(Detail));
  }
  return Info;
}
