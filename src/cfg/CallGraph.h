//===- cfg/CallGraph.h - Whole-program call graph -------------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-call graph of a Program, with the derived facts the rest
/// of the system needs:
///
///   - deduplicated callee / caller adjacency,
///   - strongly connected components (Tarjan) and the routines that lie
///     on call cycles (recursion blocks the Figure 1(d) reallocation),
///   - reachability from the roots — the program entry routine and every
///     address-taken routine — which drives unreachable-routine
///     elimination and is a prerequisite for any whole-program rewrite.
///
/// Indirect calls are represented conservatively: the set of routines
/// making them is recorded, and address-taken routines count as roots
/// (any indirect call might reach them).
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_CFG_CALLGRAPH_H
#define SPIKE_CFG_CALLGRAPH_H

#include "cfg/Program.h"

#include <cstdint>
#include <vector>

namespace spike {

/// The call graph and its derived facts.
struct CallGraph {
  /// Deduplicated direct callees per routine.
  std::vector<std::vector<uint32_t>> Callees;

  /// Deduplicated direct callers per routine (inverse of Callees).
  std::vector<std::vector<uint32_t>> Callers;

  /// True for routines containing at least one indirect call.
  std::vector<bool> HasIndirectCalls;

  /// SCC id per routine; ids are assigned in reverse topological order
  /// of the condensation (a routine's SCC id is >= its callees' unless
  /// they share a component).
  std::vector<uint32_t> SccId;

  /// Number of SCCs.
  uint32_t NumSccs = 0;

  /// True for routines on a directed call cycle (a nontrivial SCC or a
  /// direct self-call).
  std::vector<bool> InCycle;

  /// True for routines reachable from the entry routine or any
  /// address-taken routine via direct calls.
  std::vector<bool> Reachable;

  /// Returns true if \p Caller directly calls \p Callee.
  bool calls(uint32_t Caller, uint32_t Callee) const {
    for (uint32_t C : Callees[Caller])
      if (C == Callee)
        return true;
    return false;
  }
};

/// Builds the call graph of \p Prog.
CallGraph buildCallGraph(const Program &Prog);

} // namespace spike

#endif // SPIKE_CFG_CALLGRAPH_H
