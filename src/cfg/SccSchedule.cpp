//===- cfg/SccSchedule.cpp - SCC-condensation task schedules --------------===//

#include "cfg/SccSchedule.h"

#include <algorithm>

using namespace spike;

SccSchedule
spike::buildSccSchedule(size_t NumNodes,
                        const std::vector<std::vector<uint32_t>> &Deps) {
  SccSchedule Sched;
  Sched.GroupOfRoutine.assign(NumNodes, 0);
  if (NumNodes == 0)
    return Sched;

  // Iterative Tarjan over the dependency graph.  Components complete in
  // reverse topological order: an edge U -> V (U before V) means V's
  // component finishes first and gets the smaller id, so iterating group
  // ids in *descending* order walks dependencies before dependents.
  std::vector<int32_t> Index(NumNodes, -1), Low(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<uint32_t> Stack;
  int32_t NextIndex = 0;
  struct Frame {
    uint32_t Node;
    size_t Child;
  };
  std::vector<Frame> Dfs;

  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (Index[Root] >= 0)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Dfs.empty()) {
      Frame &Top = Dfs.back();
      if (Top.Child < Deps[Top.Node].size()) {
        uint32_t Next = Deps[Top.Node][Top.Child++];
        if (Index[Next] < 0) {
          Index[Next] = Low[Next] = NextIndex++;
          Stack.push_back(Next);
          OnStack[Next] = true;
          Dfs.push_back({Next, 0});
        } else if (OnStack[Next]) {
          Low[Top.Node] = std::min(Low[Top.Node], Index[Next]);
        }
        continue;
      }
      uint32_t Node = Top.Node;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[Node]);
      if (Low[Node] != Index[Node])
        continue;
      for (;;) {
        uint32_t Member = Stack.back();
        Stack.pop_back();
        OnStack[Member] = false;
        Sched.GroupOfRoutine[Member] = Sched.NumGroups;
        if (Member == Node)
          break;
      }
      ++Sched.NumGroups;
    }
  }

  Sched.Members.resize(Sched.NumGroups);
  for (uint32_t Node = 0; Node < NumNodes; ++Node)
    Sched.Members[Sched.GroupOfRoutine[Node]].push_back(Node);

  // Levels: longest dependency distance.  Descending group-id order
  // visits every predecessor group before its successors, so one sweep
  // over the cross-group edges suffices; the same sweep collects the
  // condensation DAG's successor adjacency.
  std::vector<uint32_t> LevelOfGroup(Sched.NumGroups, 0);
  Sched.GroupSucc.resize(Sched.NumGroups);
  uint32_t MaxLevel = 0;
  for (uint32_t Group = Sched.NumGroups; Group-- > 0;) {
    for (uint32_t Node : Sched.Members[Group])
      for (uint32_t Succ : Deps[Node]) {
        uint32_t SuccGroup = Sched.GroupOfRoutine[Succ];
        if (SuccGroup != Group) {
          LevelOfGroup[SuccGroup] = std::max(LevelOfGroup[SuccGroup],
                                             LevelOfGroup[Group] + 1);
          Sched.GroupSucc[Group].push_back(SuccGroup);
        }
      }
    MaxLevel = std::max(MaxLevel, LevelOfGroup[Group]);
  }
  for (std::vector<uint32_t> &Succs : Sched.GroupSucc) {
    std::sort(Succs.begin(), Succs.end());
    Succs.erase(std::unique(Succs.begin(), Succs.end()), Succs.end());
  }
  Sched.Levels.resize(size_t(MaxLevel) + 1);
  for (uint32_t Group = 0; Group < Sched.NumGroups; ++Group)
    Sched.Levels[LevelOfGroup[Group]].push_back(Group);

  return Sched;
}

SccSchedule spike::buildCalleeFirstSchedule(const Program &Prog,
                                            const CallGraph &Graph) {
  // Dependency edge callee -> caller: a caller's call-return labels read
  // its callees' converged entry summaries.
  size_t Count = Prog.Routines.size();
  std::vector<std::vector<uint32_t>> Deps(Count);
  for (uint32_t Caller = 0; Caller < Count; ++Caller)
    for (uint32_t Callee : Graph.Callees[Caller])
      if (Callee != Caller)
        Deps[Callee].push_back(Caller);
  return buildSccSchedule(Count, Deps);
}

SccSchedule spike::buildCallerFirstSchedule(const Program &Prog,
                                            const CallGraph &Graph) {
  // Dependency edge caller -> callee: a callee's exit liveness reads its
  // callers' converged return-site liveness.  The indirect coupling is
  // compressed through one synthetic hub node (indirect caller -> hub ->
  // every address-taken routine) instead of a quadratic edge set; a
  // cycle through the hub merges exactly the routines that genuinely
  // feed back into each other.
  size_t Count = Prog.Routines.size();
  bool AnyIndirect = false, AnyTaken = false;
  for (uint32_t R = 0; R < Count; ++R) {
    AnyIndirect |= bool(Graph.HasIndirectCalls[R]);
    AnyTaken |= Prog.Routines[R].AddressTaken;
  }
  bool UseHub = AnyIndirect && AnyTaken;
  size_t NumNodes = Count + (UseHub ? 1 : 0);
  uint32_t Hub = uint32_t(Count);

  std::vector<std::vector<uint32_t>> Deps(NumNodes);
  for (uint32_t Caller = 0; Caller < Count; ++Caller)
    for (uint32_t Callee : Graph.Callees[Caller])
      if (Callee != Caller)
        Deps[Caller].push_back(Callee);
  if (UseHub)
    for (uint32_t R = 0; R < Count; ++R) {
      if (Graph.HasIndirectCalls[R])
        Deps[R].push_back(Hub);
      if (Prog.Routines[R].AddressTaken)
        Deps[Hub].push_back(R);
    }

  SccSchedule Sched = buildSccSchedule(NumNodes, Deps);
  if (UseHub) {
    // Drop the hub from its group's member list (its group stays in the
    // level structure; an empty group simply schedules nothing).
    std::vector<uint32_t> &HubMembers =
        Sched.Members[Sched.GroupOfRoutine[Hub]];
    HubMembers.erase(std::remove(HubMembers.begin(), HubMembers.end(), Hub),
                     HubMembers.end());
    Sched.GroupOfRoutine.resize(Count);
  }
  return Sched;
}
