//===- cfg/CfgBuilder.h - Image -> Program CFG construction ---*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the decoded Program model (routines + basic blocks) from an
/// executable Image, and computes per-block DEF/UBD sets.
///
/// This is the "CFG Build" and "Initialization" part of the analysis whose
/// time Figure 13 reports.  Construction follows standard leader-based
/// block discovery, with the paper's convention that call instructions end
/// basic blocks, plus:
///   - multiway-branch successors extracted from the image's jump tables
///     (Section 3.5),
///   - indirect jumps whose targets cannot be determined marked
///     UnresolvedJump so the analyses can assume all registers live,
///   - call targets that are not named entry points added as extra
///     routine entrances (a post-link optimizer must discover these),
///   - routines whose code fails semantic validation *quarantined*:
///     modelled as a single UnresolvedJump block with worst-case DEF/UBD
///     (exactly how Section 3.5 treats unknowable code) instead of
///     rejecting the whole image.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_CFG_CFGBUILDER_H
#define SPIKE_CFG_CFGBUILDER_H

#include "binary/Image.h"
#include "cfg/Program.h"
#include "support/MemoryTracker.h"

namespace spike {

class ThreadPool;

/// Options for CFG construction.
struct CfgBuildOptions {
  /// Routine names to quarantine even if their code validates.  Used by
  /// the fuzzer's soundness oracle (and tests) to check that degraded
  /// summaries stay conservative relative to exact ones.
  std::vector<std::string> ForceQuarantine;

  /// Routine names to degrade because their SCC group blew its analysis
  /// budget on a previous attempt (DegradeReason::Budget).  Same
  /// worst-case Section 3.5 collapse as quarantine; distinct reason so
  /// lint (SL013) and run reports can tell "the code is garbage" from
  /// "the budget was too small".
  std::vector<std::string> BudgetDegrade;
};

/// Decodes \p Img and builds the routine/basic-block structure.
///
/// The image need *not* verify(): semantic defects are absorbed by
/// quarantining the offending routines (their findings are recorded in
/// Program::Validation).  DEF/UBD sets are *not* filled in; call
/// computeDefUbd afterwards (the split matches the paper's stage
/// breakdown).  \p Mem, when non-null, is charged for the analysis data
/// structures created here.  When \p Pool is non-null, per-routine block
/// discovery runs one task per routine (each task writes only its own
/// routine); the result is identical to the serial build.
Program buildProgram(const Image &Img, const CallingConv &Conv,
                     MemoryTracker *Mem = nullptr,
                     const CfgBuildOptions &Options = {},
                     ThreadPool *Pool = nullptr);

/// Computes the DEF and UBD register sets of every basic block
/// ("Initialization ... consists mainly of the time spent generating the
/// DEF and UBD sets for each basic block").
///
/// A call terminator's register uses (e.g. jsr_r's target register) are
/// included in UBD, but its def of ra is excluded: the ra def is modelled
/// on the call-return edge by the interprocedural analyses.  Routines are
/// independent, so \p Pool (when non-null) runs one task per routine.
void computeDefUbd(Program &Prog, ThreadPool *Pool = nullptr);

/// Returns the index of the routine containing \p Address, or -1.
int32_t findRoutineByAddress(const Program &Prog, uint64_t Address);

} // namespace spike

#endif // SPIKE_CFG_CFGBUILDER_H
