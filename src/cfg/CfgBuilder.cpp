//===- cfg/CfgBuilder.cpp - Image -> Program CFG construction ------------===//

#include "cfg/CfgBuilder.h"

#include "isa/Encoding.h"

#include <algorithm>
#include <cassert>

using namespace spike;

int32_t spike::findRoutineByAddress(const Program &Prog, uint64_t Address) {
  // Routines are sorted by Begin and contiguous; binary search the last
  // routine with Begin <= Address.
  const auto &Routines = Prog.Routines;
  auto It = std::upper_bound(
      Routines.begin(), Routines.end(), Address,
      [](uint64_t A, const Routine &R) { return A < R.Begin; });
  if (It == Routines.begin())
    return -1;
  --It;
  if (Address >= It->End)
    return -1;
  return int32_t(It - Routines.begin());
}

namespace {

/// Builds the basic blocks of one routine.
class RoutineBuilder {
public:
  RoutineBuilder(const Program &Prog, Routine &R) : Prog(Prog), R(R) {}

  void run() {
    findLeaders();
    makeBlocks();
    connectBlocks();
    indexAnchors();
  }

private:
  uint64_t localSize() const { return R.End - R.Begin; }

  bool inRoutine(uint64_t Address) const {
    return Address >= R.Begin && Address < R.End;
  }

  /// Returns the branch target of the instruction at \p Address, assuming
  /// it is a relative branch.
  uint64_t branchTarget(uint64_t Address) const {
    const Instruction &Inst = Prog.Insts[Address];
    return uint64_t(int64_t(Address) + 1 + Inst.Imm);
  }

  void markLeader(uint64_t Address) {
    if (inRoutine(Address))
      IsLeader[Address - R.Begin] = true;
  }

  void findLeaders() {
    IsLeader.assign(localSize(), false);
    IsLeader[0] = true;
    for (uint64_t Entry : R.EntryAddresses)
      markLeader(Entry);
    for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
      const Instruction &Inst = Prog.Insts[Address];
      const OpcodeInfo &Info = opcodeInfo(Inst.Op);
      if (!Inst.endsBlock())
        continue;
      if (Address + 1 < R.End)
        IsLeader[Address + 1 - R.Begin] = true;
      if (Info.IsCondBranch || Info.IsUncondBranch)
        markLeader(branchTarget(Address));
      if (Info.IsTableJump) {
        const JumpTableTargets &Table =
            Prog.JumpTables[uint32_t(Inst.Imm)];
        for (uint64_t Target : Table.Targets)
          markLeader(Target);
      }
    }
  }

  void makeBlocks() {
    BlockOfAddress.assign(localSize(), ~uint32_t(0));
    uint64_t Address = R.Begin;
    while (Address < R.End) {
      BasicBlock Block;
      Block.Begin = Address;
      uint64_t Cursor = Address;
      for (;;) {
        BlockOfAddress[Cursor - R.Begin] = uint32_t(R.Blocks.size());
        if (Prog.Insts[Cursor].endsBlock()) {
          ++Cursor;
          break;
        }
        ++Cursor;
        if (Cursor == R.End || IsLeader[Cursor - R.Begin])
          break;
      }
      Block.End = Cursor;
      R.Blocks.push_back(std::move(Block));
      Address = Cursor;
    }
  }

  uint32_t blockAt(uint64_t Address) const {
    assert(inRoutine(Address) && "address outside routine");
    uint32_t Block = BlockOfAddress[Address - R.Begin];
    assert(Block != ~uint32_t(0) && "address not covered by a block");
    return Block;
  }

  void addSucc(BasicBlock &Block, uint32_t Succ) {
    if (std::find(Block.Succs.begin(), Block.Succs.end(), Succ) ==
        Block.Succs.end())
      Block.Succs.push_back(Succ);
  }

  void connectBlocks() {
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      BasicBlock &Block = R.Blocks[BlockIndex];
      uint64_t Last = Block.End - 1;
      const Instruction &Term = Prog.Insts[Last];
      const OpcodeInfo &Info = opcodeInfo(Term.Op);
      bool HasFallThrough = Block.End < R.End;

      if (!Term.endsBlock()) {
        Block.Term = TerminatorKind::FallThrough;
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        continue;
      }

      if (Info.IsUncondBranch) {
        uint64_t Target = branchTarget(Last);
        if (!inRoutine(Target)) {
          // A branch leaving the routine (e.g. a tail call) has unknown
          // register behaviour at this level; treat conservatively.
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::Branch;
        addSucc(Block, blockAt(Target));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsCondBranch) {
        uint64_t Target = branchTarget(Last);
        if (!inRoutine(Target)) {
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::CondBranch;
        addSucc(Block, blockAt(Target));
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsCall) {
        Block.Term = Info.IsIndirectCall ? TerminatorKind::IndirectCall
                                         : TerminatorKind::Call;
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        continue;
      }

      if (Info.IsReturn) {
        Block.Term = TerminatorKind::Return;
        continue;
      }

      if (Info.IsTableJump) {
        const JumpTableTargets &Table =
            Prog.JumpTables[uint32_t(Term.Imm)];
        bool AllInRoutine = true;
        for (uint64_t Target : Table.Targets)
          AllInRoutine &= inRoutine(Target);
        if (!AllInRoutine) {
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::TableJump;
        Block.JumpTableIndex = Term.Imm;
        for (uint64_t Target : Table.Targets)
          addSucc(Block, blockAt(Target));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsUnresolvedJump) {
        Block.Term = TerminatorKind::UnresolvedJump;
        continue;
      }

      assert(Info.IsHalt && "unhandled terminator kind");
      Block.Term = TerminatorKind::Halt;
    }

    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex)
      for (uint32_t Succ : R.Blocks[BlockIndex].Succs)
        R.Blocks[Succ].Preds.push_back(BlockIndex);
  }

  void indexAnchors() {
    R.EntryBlocks.clear();
    for (uint64_t Entry : R.EntryAddresses) {
      assert(Prog.Insts.size() > Entry && inRoutine(Entry));
      // Entrances always start a block (they were marked as leaders).
      assert(R.Blocks[blockAt(Entry)].Begin == Entry &&
             "entrance does not start a block");
      R.EntryBlocks.push_back(blockAt(Entry));
    }
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      const BasicBlock &Block = R.Blocks[BlockIndex];
      if (Block.Term == TerminatorKind::Return)
        R.ExitBlocks.push_back(BlockIndex);
      if (Block.endsWithCall())
        R.CallBlocks.push_back(BlockIndex);
    }
  }

  const Program &Prog;
  Routine &R;
  std::vector<bool> IsLeader;
  std::vector<uint32_t> BlockOfAddress;
};

} // namespace

Program spike::buildProgram(const Image &Img, const CallingConv &Conv,
                            MemoryTracker *Mem) {
  assert(!Img.verify() && "image must verify before CFG construction");
  Program Prog;
  Prog.Conv = Conv;

  // Decode the code section.
  Prog.Insts.reserve(Img.Code.size());
  for (uint64_t Word : Img.Code) {
    std::optional<Instruction> Inst = decodeInstruction(Word);
    assert(Inst && "verified image contained an undecodable word");
    Prog.Insts.push_back(*Inst);
  }
  chargeIf(Mem, Prog.Insts.size() * sizeof(Instruction));

  for (const JumpTable &Table : Img.JumpTables) {
    Prog.JumpTables.push_back({Table.Targets});
    chargeIf(Mem, Table.Targets.size() * sizeof(uint64_t));
  }

  // Partition the code into routines at primary symbol addresses.  The
  // image's symbols are sorted by finalize().
  std::vector<const Symbol *> Primaries;
  for (const Symbol &Sym : Img.Symbols)
    if (!Sym.Secondary)
      Primaries.push_back(&Sym);

  if (Primaries.empty() && !Img.Code.empty()) {
    // Defensive: an image with no symbols is one anonymous routine.
    Routine R;
    R.Name = "<anon>";
    R.Begin = 0;
    R.End = Img.Code.size();
    R.EntryAddresses.push_back(0);
    Prog.Routines.push_back(std::move(R));
  } else {
    for (size_t I = 0; I < Primaries.size(); ++I) {
      Routine R;
      R.Name = Primaries[I]->Name;
      R.Begin = Primaries[I]->Address;
      R.End = I + 1 < Primaries.size() ? Primaries[I + 1]->Address
                                       : Img.Code.size();
      R.AddressTaken = Primaries[I]->AddressTaken;
      R.EntryAddresses.push_back(R.Begin);
      Prog.Routines.push_back(std::move(R));
    }
  }

  // Attach secondary entrances to their containing routines.
  for (const Symbol &Sym : Img.Symbols) {
    if (!Sym.Secondary)
      continue;
    int32_t RoutineIndex = findRoutineByAddress(Prog, Sym.Address);
    assert(RoutineIndex >= 0 && "secondary entry outside all routines");
    Routine &R = Prog.Routines[RoutineIndex];
    if (std::find(R.EntryAddresses.begin(), R.EntryAddresses.end(),
                  Sym.Address) == R.EntryAddresses.end())
      R.EntryAddresses.push_back(Sym.Address);
    if (Sym.AddressTaken)
      R.AddressTaken = true;
  }

  // Discover call-targeted entrances the symbol table does not name.
  for (uint64_t Address = 0; Address < Prog.Insts.size(); ++Address) {
    const Instruction &Inst = Prog.Insts[Address];
    if (Inst.Op != Opcode::Jsr)
      continue;
    uint64_t Target = uint64_t(uint32_t(Inst.Imm));
    int32_t RoutineIndex = findRoutineByAddress(Prog, Target);
    assert(RoutineIndex >= 0 && "call target outside all routines");
    Routine &R = Prog.Routines[RoutineIndex];
    if (std::find(R.EntryAddresses.begin(), R.EntryAddresses.end(),
                  Target) == R.EntryAddresses.end())
      R.EntryAddresses.push_back(Target);
  }

  // Build per-routine CFGs.
  for (Routine &R : Prog.Routines) {
    std::sort(R.EntryAddresses.begin(), R.EntryAddresses.end());
    RoutineBuilder Builder(Prog, R);
    Builder.run();
  }

  // Resolve direct-call targets to (routine, entrance) pairs.
  for (Routine &R : Prog.Routines) {
    for (uint32_t BlockIndex : R.CallBlocks) {
      BasicBlock &Block = R.Blocks[BlockIndex];
      if (Block.Term != TerminatorKind::Call)
        continue;
      const Instruction &Call = Prog.Insts[Block.End - 1];
      uint64_t Target = uint64_t(uint32_t(Call.Imm));
      int32_t CalleeIndex = findRoutineByAddress(Prog, Target);
      assert(CalleeIndex >= 0 && "unresolved direct call");
      const Routine &Callee = Prog.Routines[CalleeIndex];
      auto It = std::find(Callee.EntryAddresses.begin(),
                          Callee.EntryAddresses.end(), Target);
      assert(It != Callee.EntryAddresses.end() &&
             "call target was not registered as an entrance");
      Block.CalleeRoutine = CalleeIndex;
      Block.CalleeEntry = int32_t(It - Callee.EntryAddresses.begin());
    }
  }

  // Copy the Section 3.5 side tables.
  for (const IndirectCallAnnotation &Annot : Img.CallAnnotations)
    Prog.CallAnnotations[Annot.Address] = Annot;
  for (const IndirectJumpAnnotation &Annot : Img.JumpAnnotations)
    Prog.JumpLiveAnnotations[Annot.Address] = Annot.LiveAtTarget;

  // Locate the entry routine.
  Prog.EntryRoutine = Img.Code.empty()
                          ? -1
                          : findRoutineByAddress(Prog, Img.EntryAddress);

  if (Mem) {
    for (const Routine &R : Prog.Routines) {
      Mem->charge(sizeof(Routine) +
                  R.EntryAddresses.size() * sizeof(uint64_t) +
                  (R.EntryBlocks.size() + R.ExitBlocks.size() +
                   R.CallBlocks.size()) *
                      sizeof(uint32_t));
      for (const BasicBlock &Block : R.Blocks)
        Mem->charge(sizeof(BasicBlock) +
                    (Block.Succs.size() + Block.Preds.size()) *
                        sizeof(uint32_t));
    }
  }

  return Prog;
}

void spike::computeDefUbd(Program &Prog) {
  for (Routine &R : Prog.Routines) {
    for (BasicBlock &Block : R.Blocks) {
      RegSet Def, Ubd;
      for (uint64_t Address = Block.Begin; Address < Block.End; ++Address) {
        const Instruction &Inst = Prog.Insts[Address];
        bool IsCallTerminator =
            Address == Block.End - 1 && opcodeInfo(Inst.Op).IsCall;
        Ubd |= Inst.uses() - Def;
        if (!IsCallTerminator)
          Def |= Inst.defs();
      }
      Block.Def = Def;
      Block.Ubd = Ubd;
    }
  }
}
