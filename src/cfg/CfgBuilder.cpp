//===- cfg/CfgBuilder.cpp - Image -> Program CFG construction ------------===//

#include "cfg/CfgBuilder.h"

#include "isa/Encoding.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace spike;

int32_t spike::findRoutineByAddress(const Program &Prog, uint64_t Address) {
  // Routines are sorted by Begin and contiguous; binary search the last
  // routine with Begin <= Address.
  const auto &Routines = Prog.Routines;
  auto It = std::upper_bound(
      Routines.begin(), Routines.end(), Address,
      [](uint64_t A, const Routine &R) { return A < R.Begin; });
  if (It == Routines.begin())
    return -1;
  --It;
  if (Address >= It->End)
    return -1;
  return int32_t(It - Routines.begin());
}

namespace {

/// Builds the basic blocks of one routine.
class RoutineBuilder {
public:
  RoutineBuilder(const Program &Prog, Routine &R) : Prog(Prog), R(R) {}

  void run() {
    findLeaders();
    makeBlocks();
    connectBlocks();
    indexAnchors();
  }

private:
  uint64_t localSize() const { return R.End - R.Begin; }

  bool inRoutine(uint64_t Address) const {
    return Address >= R.Begin && Address < R.End;
  }

  /// Returns the branch target of the instruction at \p Address, assuming
  /// it is a relative branch.
  uint64_t branchTarget(uint64_t Address) const {
    const Instruction &Inst = Prog.Insts[Address];
    return uint64_t(int64_t(Address) + 1 + Inst.Imm);
  }

  void markLeader(uint64_t Address) {
    if (inRoutine(Address))
      IsLeader[Address - R.Begin] = true;
  }

  void findLeaders() {
    IsLeader.assign(localSize(), false);
    IsLeader[0] = true;
    for (uint64_t Entry : R.EntryAddresses)
      markLeader(Entry);
    for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
      const Instruction &Inst = Prog.Insts[Address];
      const OpcodeInfo &Info = opcodeInfo(Inst.Op);
      if (!Inst.endsBlock())
        continue;
      if (Address + 1 < R.End)
        IsLeader[Address + 1 - R.Begin] = true;
      if (Info.IsCondBranch || Info.IsUncondBranch)
        markLeader(branchTarget(Address));
      if (Info.IsTableJump) {
        // The validator quarantines routines with dangling table
        // indices, so a healthy routine's index is in range; the bounds
        // check is defense in depth, not a reachable path.
        uint64_t TableIndex = uint64_t(uint32_t(Inst.Imm));
        if (TableIndex >= Prog.JumpTables.size())
          continue;
        const JumpTableTargets &Table = Prog.JumpTables[TableIndex];
        for (uint64_t Target : Table.Targets)
          markLeader(Target);
      }
    }
  }

  void makeBlocks() {
    BlockOfAddress.assign(localSize(), ~uint32_t(0));
    uint64_t Address = R.Begin;
    while (Address < R.End) {
      BasicBlock Block;
      Block.Begin = Address;
      uint64_t Cursor = Address;
      for (;;) {
        BlockOfAddress[Cursor - R.Begin] = uint32_t(R.Blocks.size());
        if (Prog.Insts[Cursor].endsBlock()) {
          ++Cursor;
          break;
        }
        ++Cursor;
        if (Cursor == R.End || IsLeader[Cursor - R.Begin])
          break;
      }
      Block.End = Cursor;
      R.Blocks.push_back(std::move(Block));
      Address = Cursor;
    }
  }

  uint32_t blockAt(uint64_t Address) const {
    assert(inRoutine(Address) && "address outside routine");
    uint32_t Block = BlockOfAddress[Address - R.Begin];
    assert(Block != ~uint32_t(0) && "address not covered by a block");
    return Block;
  }

  void addSucc(BasicBlock &Block, uint32_t Succ) {
    if (std::find(Block.Succs.begin(), Block.Succs.end(), Succ) ==
        Block.Succs.end())
      Block.Succs.push_back(Succ);
  }

  void connectBlocks() {
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      BasicBlock &Block = R.Blocks[BlockIndex];
      uint64_t Last = Block.End - 1;
      const Instruction &Term = Prog.Insts[Last];
      const OpcodeInfo &Info = opcodeInfo(Term.Op);
      bool HasFallThrough = Block.End < R.End;

      if (!Term.endsBlock()) {
        Block.Term = TerminatorKind::FallThrough;
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        continue;
      }

      if (Info.IsUncondBranch) {
        uint64_t Target = branchTarget(Last);
        if (!inRoutine(Target)) {
          // A branch leaving the routine (e.g. a tail call) has unknown
          // register behaviour at this level; treat conservatively.
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::Branch;
        addSucc(Block, blockAt(Target));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsCondBranch) {
        uint64_t Target = branchTarget(Last);
        if (!inRoutine(Target)) {
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::CondBranch;
        addSucc(Block, blockAt(Target));
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsCall) {
        Block.Term = Info.IsIndirectCall ? TerminatorKind::IndirectCall
                                         : TerminatorKind::Call;
        if (HasFallThrough)
          addSucc(Block, blockAt(Block.End));
        continue;
      }

      if (Info.IsReturn) {
        Block.Term = TerminatorKind::Return;
        continue;
      }

      if (Info.IsTableJump) {
        uint64_t TableIndex = uint64_t(uint32_t(Term.Imm));
        if (TableIndex >= Prog.JumpTables.size()) {
          // Dangling index: same defense in depth as in findLeaders —
          // degrade to an unresolved jump instead of indexing out of
          // bounds.
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        const JumpTableTargets &Table = Prog.JumpTables[TableIndex];
        bool AllInRoutine = true;
        for (uint64_t Target : Table.Targets)
          AllInRoutine &= inRoutine(Target);
        if (!AllInRoutine) {
          Block.Term = TerminatorKind::UnresolvedJump;
          ++R.NumBranches;
          continue;
        }
        Block.Term = TerminatorKind::TableJump;
        Block.JumpTableIndex = Term.Imm;
        for (uint64_t Target : Table.Targets)
          addSucc(Block, blockAt(Target));
        ++R.NumBranches;
        continue;
      }

      if (Info.IsUnresolvedJump) {
        Block.Term = TerminatorKind::UnresolvedJump;
        continue;
      }

      assert(Info.IsHalt && "unhandled terminator kind");
      Block.Term = TerminatorKind::Halt;
    }

    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex)
      for (uint32_t Succ : R.Blocks[BlockIndex].Succs)
        R.Blocks[Succ].Preds.push_back(BlockIndex);
  }

  void indexAnchors() {
    R.EntryBlocks.clear();
    for (uint64_t Entry : R.EntryAddresses) {
      assert(Prog.Insts.size() > Entry && inRoutine(Entry));
      // Entrances always start a block (they were marked as leaders).
      assert(R.Blocks[blockAt(Entry)].Begin == Entry &&
             "entrance does not start a block");
      R.EntryBlocks.push_back(blockAt(Entry));
    }
    for (uint32_t BlockIndex = 0; BlockIndex < R.Blocks.size();
         ++BlockIndex) {
      const BasicBlock &Block = R.Blocks[BlockIndex];
      if (Block.Term == TerminatorKind::Return)
        R.ExitBlocks.push_back(BlockIndex);
      if (Block.endsWithCall())
        R.CallBlocks.push_back(BlockIndex);
    }
  }

  const Program &Prog;
  Routine &R;
  std::vector<bool> IsLeader;
  std::vector<uint32_t> BlockOfAddress;
};

} // namespace

Program spike::buildProgram(const Image &Img, const CallingConv &Conv,
                            MemoryTracker *Mem,
                            const CfgBuildOptions &Options,
                            ThreadPool *Pool) {
  telemetry::Span BuildSpan("cfg.build");
  Program Prog;
  Prog.Conv = Conv;
  Prog.Validation = validateImage(Img);

  // Decode the code section.  Undecodable words get a halt placeholder:
  // the validator quarantines their owning routine (or, for unowned
  // garbage, the opaque-region scan below makes every routine
  // CalledFromQuarantine), so the placeholder is never analyzed as if it
  // were real code.
  std::vector<bool> Undecodable(Img.Code.size(), false);
  Prog.Insts.reserve(Img.Code.size());
  for (uint64_t Address = 0; Address < Img.Code.size(); ++Address) {
    std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
    if (!Inst) {
      Undecodable[Address] = true;
      Instruction Placeholder;
      Placeholder.Op = Opcode::Halt;
      Prog.Insts.push_back(Placeholder);
      continue;
    }
    Prog.Insts.push_back(*Inst);
  }
  chargeIf(Mem, Prog.Insts.size() * sizeof(Instruction));

  for (const JumpTable &Table : Img.JumpTables) {
    Prog.JumpTables.push_back({Table.Targets});
    chargeIf(Mem, Table.Targets.size() * sizeof(uint64_t));
  }

  // Partition the code into routines at primary symbol addresses.
  // Defensively sort and dedup rather than trusting finalize() was run:
  // out-of-range, unsorted, or duplicate primaries are validator
  // findings, and the partition here must match the one the validator
  // used for attribution (in-range primaries, sorted, first-at-address
  // wins).
  std::vector<const Symbol *> Primaries;
  for (const Symbol &Sym : Img.Symbols)
    if (!Sym.Secondary && Sym.Address < Img.Code.size())
      Primaries.push_back(&Sym);
  std::stable_sort(Primaries.begin(), Primaries.end(),
                   [](const Symbol *A, const Symbol *B) {
                     return A->Address < B->Address;
                   });
  Primaries.erase(std::unique(Primaries.begin(), Primaries.end(),
                              [](const Symbol *A, const Symbol *B) {
                                return A->Address == B->Address;
                              }),
                  Primaries.end());

  if (Primaries.empty() && !Img.Code.empty()) {
    // Defensive: an image with no symbols is one anonymous routine.
    Routine R;
    R.Name = "<anon>";
    R.Begin = 0;
    R.End = Img.Code.size();
    R.EntryAddresses.push_back(0);
    Prog.Routines.push_back(std::move(R));
  } else {
    for (size_t I = 0; I < Primaries.size(); ++I) {
      Routine R;
      R.Name = Primaries[I]->Name;
      R.Begin = Primaries[I]->Address;
      R.End = I + 1 < Primaries.size() ? Primaries[I + 1]->Address
                                       : Img.Code.size();
      R.AddressTaken = Primaries[I]->AddressTaken;
      R.EntryAddresses.push_back(R.Begin);
      Prog.Routines.push_back(std::move(R));
    }
  }

  // Quarantine routines the validator attributed defects to, plus any
  // the caller forces (the fuzzer's soundness oracle).
  for (const ValidationFinding &F : Prog.Validation.Findings) {
    if (!F.Quarantines || F.Address < 0)
      continue;
    int32_t RoutineIndex = findRoutineByAddress(Prog, uint64_t(F.Address));
    if (RoutineIndex < 0)
      continue;
    Routine &R = Prog.Routines[RoutineIndex];
    if (!R.Quarantined) {
      R.Quarantined = true;
      R.QuarantineReason = F.Message;
      R.Degrade = DegradeReason::Validation;
    }
  }
  for (const std::string &Name : Options.ForceQuarantine)
    for (Routine &R : Prog.Routines)
      if (R.Name == Name && !R.Quarantined) {
        R.Quarantined = true;
        R.QuarantineReason = "quarantine forced by build options";
        R.Degrade = DegradeReason::Forced;
      }
  for (const std::string &Name : Options.BudgetDegrade)
    for (Routine &R : Prog.Routines)
      if (R.Name == Name && !R.Quarantined) {
        R.Quarantined = true;
        R.QuarantineReason = "analysis budget exceeded";
        R.Degrade = DegradeReason::Budget;
      }

  // Attach secondary entrances to their containing routines; orphaned
  // secondaries (out of range or in a symbol gap) are dropped — the
  // validator reported them.
  for (const Symbol &Sym : Img.Symbols) {
    if (!Sym.Secondary)
      continue;
    int32_t RoutineIndex = findRoutineByAddress(Prog, Sym.Address);
    if (RoutineIndex < 0)
      continue;
    Routine &R = Prog.Routines[RoutineIndex];
    if (std::find(R.EntryAddresses.begin(), R.EntryAddresses.end(),
                  Sym.Address) == R.EntryAddresses.end())
      R.EntryAddresses.push_back(Sym.Address);
    if (Sym.AddressTaken)
      R.AddressTaken = true;
  }

  // Discover call-targeted entrances the symbol table does not name, and
  // work out what quarantined (or unowned) code can reach.  A direct jsr
  // from such a region names its target, which must then assume a caller
  // that ignores the calling standard; indirect calls or undecodable
  // words there can reach *anything*.
  bool OpaqueQuarantine = false;
  for (uint64_t Address = 0; Address < Prog.Insts.size(); ++Address) {
    int32_t Owner = findRoutineByAddress(Prog, Address);
    bool InBadRegion =
        Owner < 0 || Prog.Routines[uint32_t(Owner)].Quarantined;
    if (Undecodable[Address]) {
      OpaqueQuarantine = true;
      continue;
    }
    const Instruction &Inst = Prog.Insts[Address];
    if (Inst.Op == Opcode::JsrR && InBadRegion)
      OpaqueQuarantine = true;
    if (Inst.Op != Opcode::Jsr)
      continue;
    int32_t TargetRoutine = -1;
    if (Inst.Imm >= 0 && uint64_t(Inst.Imm) < Prog.Insts.size())
      TargetRoutine = findRoutineByAddress(Prog, uint64_t(Inst.Imm));
    if (TargetRoutine < 0) {
      // Wild call: the validator quarantined its owner (or it sits in
      // unowned code).  Either way there is no entrance to register.
      continue;
    }
    Routine &R = Prog.Routines[uint32_t(TargetRoutine)];
    uint64_t Target = uint64_t(Inst.Imm);
    if (std::find(R.EntryAddresses.begin(), R.EntryAddresses.end(),
                  Target) == R.EntryAddresses.end())
      R.EntryAddresses.push_back(Target);
    if (InBadRegion)
      R.CalledFromQuarantine = true;
  }
  if (OpaqueQuarantine)
    for (Routine &R : Prog.Routines)
      R.CalledFromQuarantine = true;

  // Build per-routine CFGs, one task per routine: each builder reads
  // only the shared instruction stream and writes only its own routine.
  // A quarantined routine is modelled exactly like the paper's unknowable
  // code (Section 3.5): one block spanning the whole routine, terminated
  // by an unresolved jump, using and defining nothing we can rely on —
  // worst-case UBD, empty DEF — with no exits and no call sites.  Every
  // entrance maps to that block.
  forEachTask(Pool, Prog.Routines.size(), [&](size_t RoutineIndex, unsigned) {
    Routine &R = Prog.Routines[RoutineIndex];
    std::sort(R.EntryAddresses.begin(), R.EntryAddresses.end());
    if (R.Quarantined) {
      BasicBlock Block;
      Block.Begin = R.Begin;
      Block.End = R.End;
      Block.Term = TerminatorKind::UnresolvedJump;
      Block.Ubd = RegSet::allBelow(NumIntRegs);
      R.Blocks.push_back(std::move(Block));
      R.EntryBlocks.assign(R.EntryAddresses.size(), 0);
      return;
    }
    RoutineBuilder Builder(Prog, R);
    Builder.run();
  });

  // Resolve direct-call targets to (routine, entrance) pairs.
  // Quarantined routines have no call blocks; healthy routines' call
  // targets are guaranteed resolvable by the validator.
  for (Routine &R : Prog.Routines) {
    for (uint32_t BlockIndex : R.CallBlocks) {
      BasicBlock &Block = R.Blocks[BlockIndex];
      if (Block.Term != TerminatorKind::Call)
        continue;
      const Instruction &Call = Prog.Insts[Block.End - 1];
      uint64_t Target = uint64_t(uint32_t(Call.Imm));
      int32_t CalleeIndex = findRoutineByAddress(Prog, Target);
      assert(CalleeIndex >= 0 && "unresolved direct call");
      const Routine &Callee = Prog.Routines[CalleeIndex];
      auto It = std::find(Callee.EntryAddresses.begin(),
                          Callee.EntryAddresses.end(), Target);
      assert(It != Callee.EntryAddresses.end() &&
             "call target was not registered as an entrance");
      Block.CalleeRoutine = CalleeIndex;
      Block.CalleeEntry = int32_t(It - Callee.EntryAddresses.begin());
    }
  }

  // Copy the Section 3.5 side tables, dropping annotations that do not
  // resolve to the matching instruction inside a healthy routine:
  // quarantined code is modelled worst-case, and trusting an annotation
  // planted in garbage would un-do that conservatism.
  auto AnnotationUsable = [&](uint64_t Address, Opcode Expected) {
    if (Address >= Prog.Insts.size() || Undecodable[Address])
      return false;
    if (Prog.Insts[Address].Op != Expected)
      return false;
    int32_t Owner = findRoutineByAddress(Prog, Address);
    return Owner >= 0 && !Prog.Routines[uint32_t(Owner)].Quarantined;
  };
  for (const IndirectCallAnnotation &Annot : Img.CallAnnotations)
    if (AnnotationUsable(Annot.Address, Opcode::JsrR))
      Prog.CallAnnotations[Annot.Address] = Annot;
  for (const IndirectJumpAnnotation &Annot : Img.JumpAnnotations)
    if (AnnotationUsable(Annot.Address, Opcode::JmpR))
      Prog.JumpLiveAnnotations[Annot.Address] = Annot.LiveAtTarget;

  // Locate the entry routine (-1 when the entry address is out of range
  // or falls outside every routine; both are validator findings).
  Prog.EntryRoutine = Img.EntryAddress < Img.Code.size()
                          ? findRoutineByAddress(Prog, Img.EntryAddress)
                          : -1;

  if (Mem) {
    for (const Routine &R : Prog.Routines) {
      Mem->charge(sizeof(Routine) +
                  R.EntryAddresses.size() * sizeof(uint64_t) +
                  (R.EntryBlocks.size() + R.ExitBlocks.size() +
                   R.CallBlocks.size()) *
                      sizeof(uint32_t));
      for (const BasicBlock &Block : R.Blocks)
        Mem->charge(sizeof(BasicBlock) +
                    (Block.Succs.size() + Block.Preds.size()) *
                        sizeof(uint32_t));
    }
  }

  if (telemetry::active()) {
    telemetry::count("cfg.routines", Prog.Routines.size());
    telemetry::count("cfg.blocks", Prog.numBlocks());
    telemetry::count("cfg.insts", Prog.Insts.size());
    telemetry::count("cfg.quarantined_routines", Prog.numQuarantined());
    telemetry::count("degrade.budget_routines", Prog.numBudgetDegraded());
  }

  return Prog;
}

void spike::computeDefUbd(Program &Prog, ThreadPool *Pool) {
  forEachTask(Pool, Prog.Routines.size(), [&](size_t RoutineIndex, unsigned) {
    Routine &R = Prog.Routines[RoutineIndex];
    // Quarantined routines keep their hand-set worst-case sets (empty
    // DEF, all-registers UBD); recomputing from the placeholder-decoded
    // garbage would be unsound.
    if (R.Quarantined)
      return;
    for (BasicBlock &Block : R.Blocks) {
      RegSet Def, Ubd;
      for (uint64_t Address = Block.Begin; Address < Block.End; ++Address) {
        const Instruction &Inst = Prog.Insts[Address];
        bool IsCallTerminator =
            Address == Block.End - 1 && opcodeInfo(Inst.Op).IsCall;
        Ubd |= Inst.uses() - Def;
        if (!IsCallTerminator)
          Def |= Inst.defs();
      }
      Block.Def = Def;
      Block.Ubd = Ubd;
    }
  });
}
