//===- cfg/SccSchedule.h - SCC-condensation task schedules ----*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Task schedules for the parallel interprocedural solvers.
///
/// Both dataflow phases iterate to a fixpoint whose cross-routine
/// dependencies follow the call graph: phase 1 summaries flow from
/// callees to callers, phase 2 liveness flows from callers to callees
/// (plus the indirect-call coupling of Section 3.5, where every
/// indirect-call return site feeds the exits of every address-taken
/// routine).  Condensing the dependency graph into strongly connected
/// components yields a DAG; solving each component with the serial
/// worklist, components of the same condensation level concurrently and
/// levels in order, computes exactly the serial fixpoint: a component
/// only ever reads values its predecessors have already converged, so
/// neither the results nor the per-component iteration counts depend on
/// the number of threads.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_CFG_SCCSCHEDULE_H
#define SPIKE_CFG_SCCSCHEDULE_H

#include "cfg/CallGraph.h"
#include "cfg/Program.h"

#include <cstdint>
#include <vector>

namespace spike {

/// A dependency-respecting execution schedule over routine groups.
struct SccSchedule {
  /// Number of groups (strongly connected components of the dependency
  /// graph, possibly merged further by coupling edges).
  uint32_t NumGroups = 0;

  /// Group id per routine.
  std::vector<uint32_t> GroupOfRoutine;

  /// Member routines per group, ascending.  A group with no members (the
  /// synthetic coupling hub) schedules nothing.
  std::vector<std::vector<uint32_t>> Members;

  /// Group ids per condensation level, ascending within a level.  Groups
  /// in the same level have no dependencies between them and may solve
  /// concurrently; a group only depends on groups in strictly earlier
  /// levels.
  std::vector<std::vector<uint32_t>> Levels;

  /// Cross-group successor adjacency of the condensation DAG: GroupSucc[G]
  /// lists the groups that depend on G (deduplicated, ascending).  The
  /// incremental re-analysis engine walks this to close a dirty frontier
  /// over transitive dependents.
  std::vector<std::vector<uint32_t>> GroupSucc;
};

/// Builds the schedule for a dependency graph over \p NumNodes nodes:
/// Deps[U] lists the nodes V that must not be scheduled before U (an
/// edge U -> V).  Cycles collapse into one group.
SccSchedule buildSccSchedule(size_t NumNodes,
                             const std::vector<std::vector<uint32_t>> &Deps);

/// Phase 1 schedule: callees before callers (summaries flow upward).
SccSchedule buildCalleeFirstSchedule(const Program &Prog,
                                     const CallGraph &Graph);

/// Phase 2 schedule: callers before callees (liveness flows downward),
/// with every indirect-calling routine additionally ordered before every
/// address-taken routine — the return-site liveness of indirect calls
/// accumulates into the exits of all address-taken routines, and any
/// resulting feedback (an address-taken routine reaching an indirect
/// call) collapses into one group.
SccSchedule buildCallerFirstSchedule(const Program &Prog,
                                     const CallGraph &Graph);

} // namespace spike

#endif // SPIKE_CFG_SCCSCHEDULE_H
