//===- tools/spike-lint.cpp - whole-program static analysis driver ---------===//
//
// Lints a fully linked image with the interprocedural analysis:
//
//   spike-lint app.spkx [--json] [--verify] [--min-severity <sev>]
//                       [--disable <SLnnn>] [--rounds <n>]
//
// With no flags, prints every diagnostic in text form, one per line, then
// a summary count.  --json emits a machine-readable document instead.
//
// --verify additionally (1) cross-checks the PSG summaries against the
// CFG-level two-phase reference analysis and (2) audits the optimizer:
// it runs the full optimize pipeline on a copy of the image with the
// per-round lint self-check and summary cross-check enabled, and reports
// any finding the optimizer introduced.
//
// Exit status: 0 clean (no errors, verification passed), 1 errors or
// verification failure (an unreadable file is a SL000 error; a readable
// but defective image is analyzed anyway, with each quarantined routine
// reported as a SL011 warning), 2 usage.
//
//===----------------------------------------------------------------------===//

#include "lint/JsonWriter.h"
#include "lint/Linter.h"
#include "opt/Pipeline.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <image.spkx> [--json] [--verify] "
               "[--min-severity note|warning|error] [--disable <SLnnn>] "
               "[--rounds <n>] %s %s %s\n",
               Prog, toolopts::jobsUsage(), toolbudget::usage(),
               tooltel::usage());
  return 2;
}

int runTool(int Argc, char **Argv) {
  std::string Path;
  bool Json = false, Verify = false;
  unsigned Rounds = 3;
  LintOptions Opts;
  Opts.Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--verify") == 0)
      Verify = true;
    else if (std::strcmp(Argv[I], "--min-severity") == 0 && I + 1 < Argc) {
      std::string Sev = Argv[++I];
      if (Sev == "note")
        Opts.MinSeverity = Severity::Note;
      else if (Sev == "warning")
        Opts.MinSeverity = Severity::Warning;
      else if (Sev == "error")
        Opts.MinSeverity = Severity::Error;
      else
        return usage(Argv[0]);
    } else if (std::strcmp(Argv[I], "--disable") == 0 && I + 1 < Argc) {
      std::string Code = Argv[++I];
      bool Found = false;
      for (unsigned Rule = 0; Rule < NumLintRules; ++Rule)
        if (Code == ruleCode(RuleId(Rule)) ||
            Code == ruleName(RuleId(Rule))) {
          Opts.disableRule(RuleId(Rule));
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown rule '%s'\n", Code.c_str());
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--rounds") == 0 && I + 1 < Argc)
      Rounds = unsigned(std::atoi(Argv[++I]));
    else if (toolopts::parseJobs(Argc, Argv, I, Opts.Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else
      Path = Argv[I];
  }
  if (Path.empty())
    return usage(Argv[0]);

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-lint", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    // A file we cannot even parse gets the same structured treatment as
    // one that parses but fails verification.
    LintResult Result;
    Result.Diags.push_back(
        makeDiagnostic(RuleId::MalformedImage, -1, "", -1, -1, Error));
    std::fputs(Json ? writeDiagnosticsJson(Result).c_str()
                    : (Result.Diags[0].str() + "\n").c_str(),
               stdout);
    return 1;
  }

  Opts.Verify = Verify;
  LintResult Result;
  if (BudgetOpts.any()) {
    // Budget-degraded routines fall out of the analysis and surface as
    // SL013 warnings; a budget degradation cannot fix leads to a
    // structured error instead of a diagnostic list.
    AnalysisOptions AOpts;
    AOpts.Jobs = Opts.Jobs;
    Expected<GovernedAnalysis> Governed = analyzeImageGoverned(
        *Img, CallingConv(), AOpts, BudgetOpts.Budget, Faults.token());
    if (!Governed)
      return toolbudget::exitError(Governed.error());
    Result = lintAnalysis(*Img, Governed->Result, Opts);
  } else {
    Result = lintImage(*Img, CallingConv(), Opts);
  }

  bool VerifyFailed = false;
  if (Verify && !Result.hasErrors()) {
    // Optimizer audit: optimize a copy with the self-checks on; findings
    // the pipeline introduces surface as SL010 regressions.
    Image Copy = *Img;
    PipelineOptions PipeOpts;
    PipeOpts.MaxRounds = Rounds;
    PipeOpts.LintSelfCheck = true;
    PipeOpts.CrossCheck = true;
    PipeOpts.Jobs = Opts.Jobs;
    PipeOpts.Budget = BudgetOpts.Budget;
    PipeOpts.Cancel = Faults.token();
    PipelineStats Stats = optimizeImage(Copy, CallingConv(), PipeOpts);
    for (const std::string &Report : Stats.LintReports)
      Result.Diags.push_back(makeDiagnostic(
          RuleId::OptRegression, -1, "", -1, -1,
          "optimizer introduced a finding: " + Report));
    VerifyFailed = !Stats.clean();
  }

  if (Json)
    std::fputs(writeDiagnosticsJson(Result).c_str(), stdout);
  else {
    for (const Diagnostic &D : Result.Diags)
      std::printf("%s\n", D.str().c_str());
    std::printf("%u error(s), %u warning(s), %u note(s)\n",
                Result.count(Severity::Error),
                Result.count(Severity::Warning),
                Result.count(Severity::Note));
    if (Verify)
      std::printf("verification: %s\n",
                  Result.hasErrors() || VerifyFailed ? "FAILED" : "passed");
  }
  return Result.hasErrors() || VerifyFailed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-lint");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
