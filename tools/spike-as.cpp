//===- tools/spike-as.cpp - assembler driver -------------------------------===//
//
// Assembles synthetic-ISA assembly text into a .spkx executable image.
//
//   spike-as input.s -o output.spkx
//
//===----------------------------------------------------------------------===//

#include "binary/Assembler.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace spike;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <input.s> -o <output.spkx> %s %s\n"
               "  assembles synthetic-ISA assembly into an executable "
               "image\n"
               "  (--jobs is accepted for CLI uniformity; assembly is "
               "serial)\n",
               Prog, toolopts::jobsUsage(), tooltel::usage());
}

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-as");
  std::string InputPath, OutputPath;
  unsigned Jobs = toolopts::defaultJobs(); // accepted for CLI uniformity
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc)
      OutputPath = Argv[++I];
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (Argv[I][0] == '-') {
      usage(Argv[0]);
      return 2;
    } else
      InputPath = Argv[I];
  }
  if (InputPath.empty() || OutputPath.empty()) {
    usage(Argv[0]);
    return 2;
  }

  tooltel::Emitter Telemetry("spike-as", TelemetryOpts);

  std::ifstream Input(InputPath);
  if (!Input) {
    std::fprintf(stderr, "error: cannot open '%s'\n", InputPath.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << Input.rdbuf();

  std::string Error;
  std::optional<Image> Img = parseAssembly(Buffer.str(), &Error);
  if (!Img) {
    std::fprintf(stderr, "%s: %s\n", InputPath.c_str(), Error.c_str());
    return 1;
  }
  if (!writeImageFile(*Img, OutputPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutputPath.c_str());
    return 1;
  }
  std::printf("%s: %zu instructions, %zu symbols, %zu jump tables\n",
              OutputPath.c_str(), Img->Code.size(), Img->Symbols.size(),
              Img->JumpTables.size());
  return 0;
}
