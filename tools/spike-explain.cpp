//===- tools/spike-explain.cpp - why is this register live? ---------------===//
//
// Answers provenance queries over the interprocedural analysis: for any
// solved bit, prints the witness chain — the concrete PSG edges, callee
// summaries, and seeds that force it — and independently replays the
// chain against the graph before believing it.
//
//   spike-explain app.spkx --why-live r5@entry:foo
//   spike-explain app.spkx --why-may-use a1@call:bar#0
//   spike-explain app.spkx --why-may-def s3@entry:qux --dot
//   spike-explain app.spkx --why-dead t2@1234
//   spike-explain app.spkx --why-transformed
//   spike-explain app.spkx --check-witnesses
//
// Locations are <reg>@<kind>:<routine>[#i] with kind one of entry, exit,
// call, return (i indexes the routine's entrances / exits / call sites,
// default 0), or <reg>@node:<psg-node-id>.  --why-dead takes the
// definition's instruction address instead.
//
// Exit codes: 0 query answered (including "fact does not hold"), 1 load
// or replay or audit failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"
#include "provenance/Witness.h"
#include "psg/Analyzer.h"
#include "psg/DotExport.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int usage(const char *Tool) {
  std::fprintf(
      stderr,
      "usage: %s <image.spkx> <query> [--dot] %s %s\n"
      "queries:\n"
      "  --why-live <reg>@<loc>     why is <reg> live at <loc>?\n"
      "  --why-may-use <reg>@<loc>  why may a call at <loc> use <reg>?\n"
      "  --why-may-def <reg>@<loc>  why may a call at <loc> define <reg>?\n"
      "  --why-dead [<reg>@]<addr>  why is the definition at <addr> dead\n"
      "                             (or what observes it)?\n"
      "  --why-transformed [<addr>] what did the optimizer do, and why?\n"
      "  --check-witnesses          build + replay a witness for every\n"
      "                             live-at-entry bit (CI contract)\n"
      "locations: <kind>:<routine>[#i] with kind entry|exit|call|return,\n"
      "or node:<psg-node-id>\n",
      Tool, toolopts::jobsUsage(), tooltel::usage());
  std::fprintf(stderr, "budget flags: %s\n", toolbudget::usage());
  return 2;
}

/// A parsed <reg>@<where> query operand.
struct Location {
  unsigned Reg = NumIntRegs;
  std::string Where; // Everything after the '@'.
};

bool parseLocation(const std::string &Spec, Location &Loc) {
  size_t At = Spec.find('@');
  if (At == std::string::npos || At == 0)
    return false;
  Loc.Reg = parseRegName(Spec.substr(0, At).c_str());
  Loc.Where = Spec.substr(At + 1);
  return Loc.Reg < NumIntRegs && !Loc.Where.empty();
}

/// Resolves "<kind>:<routine>[#i]" / "node:<id>" to a PSG node id;
/// prints its own error and returns false on failure.
bool resolveNode(const AnalysisResult &A, const std::string &Where,
                 uint32_t &NodeId) {
  size_t Colon = Where.find(':');
  if (Colon == std::string::npos) {
    std::fprintf(stderr,
                 "error: location '%s' has no kind (want "
                 "entry|exit|call|return|node ':' name)\n",
                 Where.c_str());
    return false;
  }
  std::string Kind = Where.substr(0, Colon);
  std::string Name = Where.substr(Colon + 1);
  unsigned Index = 0;
  if (size_t Hash = Name.rfind('#'); Hash != std::string::npos) {
    Index = unsigned(std::strtoul(Name.c_str() + Hash + 1, nullptr, 10));
    Name = Name.substr(0, Hash);
  }

  if (Kind == "node") {
    NodeId = uint32_t(std::strtoul(Name.c_str(), nullptr, 10));
    if (NodeId >= A.Psg.Nodes.size()) {
      std::fprintf(stderr, "error: PSG node %s out of range (have %zu)\n",
                   Name.c_str(), A.Psg.Nodes.size());
      return false;
    }
    return true;
  }

  for (uint32_t R = 0; R < A.Prog.Routines.size(); ++R) {
    if (A.Prog.Routines[R].Name != Name)
      continue;
    const RoutinePsg &Info = A.Psg.RoutineInfo[R];
    const std::vector<uint32_t> *Nodes = nullptr;
    if (Kind == "entry")
      Nodes = &Info.EntryNodes;
    else if (Kind == "exit")
      Nodes = &Info.ExitNodes;
    else if (Kind == "call")
      Nodes = &Info.CallNodes;
    else if (Kind == "return")
      Nodes = &Info.ReturnNodes;
    else {
      std::fprintf(stderr,
                   "error: unknown location kind '%s' (want "
                   "entry|exit|call|return|node)\n",
                   Kind.c_str());
      return false;
    }
    if (Index >= Nodes->size()) {
      std::fprintf(stderr,
                   "error: routine '%s' has %zu %s node(s), index %u out "
                   "of range\n",
                   Name.c_str(), Nodes->size(), Kind.c_str(), Index);
      return false;
    }
    NodeId = (*Nodes)[Index];
    return true;
  }
  std::fprintf(stderr, "error: no routine named '%s'\n", Name.c_str());
  return false;
}

int runTool(int Argc, char **Argv) {
  std::string Path, Query, Operand;
  bool Dot = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--why-live") == 0 ||
        std::strcmp(Argv[I], "--why-may-use") == 0 ||
        std::strcmp(Argv[I], "--why-may-def") == 0 ||
        std::strcmp(Argv[I], "--why-dead") == 0) {
      if (!Query.empty() || I + 1 >= Argc)
        return usage(Argv[0]);
      Query = Argv[I];
      Operand = Argv[++I];
    } else if (std::strcmp(Argv[I], "--why-transformed") == 0 ||
               std::strcmp(Argv[I], "--check-witnesses") == 0) {
      if (!Query.empty())
        return usage(Argv[0]);
      Query = Argv[I];
      // --why-transformed takes an optional address filter.
      if (Query == "--why-transformed" && I + 1 < Argc &&
          Argv[I + 1][0] != '-')
        Operand = Argv[++I];
    } else if (std::strcmp(Argv[I], "--dot") == 0)
      Dot = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else if (Path.empty())
      Path = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Path.empty() || Query.empty())
    return usage(Argv[0]);

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-explain", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // --why-transformed needs the optimizer, not the provenance store.
  if (Query == "--why-transformed") {
    PipelineOptions Opts;
    Opts.AttributeTransforms = true;
    Opts.Jobs = Jobs;
    Opts.Budget = BudgetOpts.Budget;
    Opts.Cancel = Faults.token();
    Image Work = *Img; // The image on disk stays untouched.
    PipelineStats Stats = optimizeImage(Work, {}, Opts);
    int64_t Filter =
        Operand.empty() ? -1 : int64_t(std::strtoull(Operand.c_str(),
                                                     nullptr, 10));
    uint64_t Shown = 0;
    for (const telemetry::TransformRecord &R : Stats.Transforms) {
      if (Filter >= 0 && R.Address != Filter)
        continue;
      ++Shown;
      std::printf("%s %s", R.Pass.c_str(), R.Outcome.c_str());
      if (!R.Routine.empty())
        std::printf(" [%s]", R.Routine.c_str());
      if (R.Address >= 0)
        std::printf(" @%lld", (long long)R.Address);
      std::printf(": %s\n", R.Detail.c_str());
    }
    std::printf("%llu record(s) over %u round(s)%s\n",
                (unsigned long long)Shown, Stats.Rounds,
                Filter >= 0 ? " (address-filtered)" : "");
    return 0;
  }

  AnalysisOptions AOpts;
  AOpts.Jobs = Jobs;
  AOpts.RecordProvenance = true;
  AnalysisResult Result;
  if (BudgetOpts.any()) {
    Expected<GovernedAnalysis> Governed = analyzeImageGoverned(
        *Img, {}, AOpts, BudgetOpts.Budget, Faults.token());
    if (!Governed)
      return toolbudget::exitError(Governed.error());
    Result = std::move(Governed->Result);
    for (const std::string &Name : Governed->DegradedRoutines)
      std::fprintf(stderr,
                   "note: %s degraded to an unknowable summary; witness "
                   "chains through it end at its summary\n",
                   Name.c_str());
  } else {
    Result = analyzeImage(*Img, {}, AOpts);
  }

  if (Query == "--check-witnesses") {
    WitnessAudit Audit = auditEntryLiveness(Result);
    for (const std::string &Failure : Audit.Failures)
      std::fprintf(stderr, "FAIL: %s\n", Failure.c_str());
    std::printf("check-witnesses: %llu entrance(s), %llu live bit(s), "
                "%zu failure(s)\n",
                (unsigned long long)Audit.EntriesChecked,
                (unsigned long long)Audit.BitsChecked,
                Audit.Failures.size());
    return Audit.Failures.empty() ? 0 : 1;
  }

  if (Query == "--why-dead") {
    // Accept both "<reg>@<addr>" and a bare address.
    Location Loc;
    uint64_t Address;
    int RegArg = -1;
    if (parseLocation(Operand, Loc)) {
      Address = std::strtoull(Loc.Where.c_str(), nullptr, 10);
      RegArg = int(Loc.Reg);
    } else
      Address = std::strtoull(Operand.c_str(), nullptr, 10);
    DeadDefExplanation Ex = explainDeadDef(Result, Address, RegArg);
    std::fputs(Ex.Text.c_str(), stdout);
    return Ex.Found ? 0 : 1;
  }

  Location Loc;
  if (!parseLocation(Operand, Loc)) {
    std::fprintf(stderr,
                 "error: '%s' is not a <reg>@<location> operand\n",
                 Operand.c_str());
    return 2;
  }
  uint32_t NodeId;
  if (!resolveNode(Result, Loc.Where, NodeId))
    return 1;

  ProvFact Fact = Query == "--why-live"      ? ProvFact::Live
                  : Query == "--why-may-use" ? ProvFact::MayUse
                                             : ProvFact::MayDef;
  Witness W = buildWitness(Result, Fact, NodeId, Loc.Reg);
  if (W.Holds && !replayWitness(Result, W, &Error)) {
    std::fprintf(stderr,
                 "error: witness replay failed (%s) — provenance and "
                 "graph disagree\n",
                 Error.c_str());
    return 1;
  }
  if (Dot && W.Holds) {
    WitnessPath Path = witnessPath(W);
    DotHighlight Highlight;
    Highlight.Nodes = Path.Nodes;
    Highlight.Edges = Path.Edges;
    std::fputs(psgPathToDot(Result.Prog, Result.Psg, Highlight).c_str(),
               stdout);
    return 0;
  }
  std::fputs(renderWitness(Result, W).c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-explain");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
