//===- tools/spike-serve.cpp - resident analysis server -------------------===//
//
// Serves the interprocedural analysis over a newline-delimited line
// protocol (see serve/Serve.h): load an image once, keep the summaries,
// provenance, and slot facts resident, answer queries, and re-analyze
// incrementally when a routine is patched.
//
//   spike-serve app.spkx                      serve stdin/stdout
//   spike-serve app.spkx --socket=/tmp/s      serve a unix-domain socket
//   echo 'analyze {"routine":"main"}' | spike-serve app.spkx
//
// Each request line is `<command> [<json-object>]`; each reply is one
// line of JSON.  Commands: load, analyze, lint, explain, slice,
// patch-routine, stats, shutdown.  Budget flags apply per request: a
// blown request carries the `!! DEGRADED` banner in its reply and the
// server keeps serving.
//
// Exit codes: 0 served until EOF/shutdown, 1 load or socket failure,
// 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int usage(const char *Tool) {
  std::fprintf(stderr,
               "usage: %s [<image.spkx>] [--socket=<path>] [--no-provenance] "
               "%s %s\n"
               "protocol: one `<command> [<json>]` per line on stdin (or the "
               "socket),\n"
               "one JSON reply per line; commands: load analyze lint explain "
               "slice\n"
               "patch-routine stats shutdown\n",
               Tool, toolopts::jobsUsage(), tooltel::usage());
  std::fprintf(stderr, "budget flags: %s\n", toolbudget::usage());
  return 2;
}

/// Consumes `--socket=<path>` / `--socket <path>`.
bool parseSocket(int Argc, char **Argv, int &I, std::string &Path) {
  const char *Name = "--socket";
  size_t Len = std::strlen(Name);
  if (std::strncmp(Argv[I], Name, Len) != 0)
    return false;
  const char *Value = nullptr;
  if (Argv[I][Len] == '=')
    Value = Argv[I] + Len + 1;
  else if (Argv[I][Len] == '\0')
    Value = I + 1 < Argc ? Argv[++I] : "";
  else
    return false;
  if (*Value == '\0') {
    std::fprintf(stderr, "error: --socket expects a path\n");
    std::exit(2);
  }
  Path = Value;
  return true;
}

int runTool(int Argc, char **Argv) {
  std::string ImagePath, SocketPath;
  bool NoProvenance = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (parseSocket(Argc, Argv, I, SocketPath))
      ;
    else if (std::strcmp(Argv[I], "--no-provenance") == 0)
      NoProvenance = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else if (ImagePath.empty())
      ImagePath = Argv[I];
    else
      return usage(Argv[0]);
  }

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-serve", TelemetryOpts);

  ServerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Budget = BudgetOpts.Budget;
  Opts.RecordProvenance = !NoProvenance;
  Server S(Opts);

  if (!ImagePath.empty()) {
    std::string Error;
    std::optional<Image> Img = readImageFile(ImagePath, &Error);
    if (!Img) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (!S.loadImage(std::move(*Img), &Error)) {
      std::fprintf(stderr, "error: cannot analyze '%s': %s\n",
                   ImagePath.c_str(), Error.c_str());
      return 1;
    }
  }

  if (!SocketPath.empty()) {
    std::string Error;
    if (serveSocket(S, SocketPath, &Error) != 0) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    return 0;
  }
  return serveStream(S, stdin, stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
