//===- tools/spike-serve.cpp - resident analysis server -------------------===//
//
// Serves the interprocedural analysis over a newline-delimited line
// protocol (see serve/Serve.h): load an image once, keep the summaries,
// provenance, and slot facts resident, answer queries, and re-analyze
// incrementally when a routine is patched.
//
//   spike-serve app.spkx                      serve stdin/stdout
//   spike-serve app.spkx --socket=/tmp/s      serve a unix-domain socket
//   echo 'analyze {"routine":"main"}' | spike-serve app.spkx
//
// Each request line is `<command> [<json-object>]`; each reply is one
// line of JSON.  Commands: load, analyze, lint, explain, slice,
// patch-routine, stats, metrics, shutdown.  Budget flags apply per
// request: a blown request carries the `!! DEGRADED` banner in its reply
// and the server keeps serving.
//
// Request observability is on by default (--no-observe turns it off):
// per-command latency/queue-wait histograms feed the `stats` and
// `metrics` replies, --access-log=<file> appends one JSONL record per
// request, and requests at or over --slow-ms=<n> milliseconds carry
// per-SCC hot-spot attribution in their access-log record (--slow-ms=0
// attributes everything; spike-top renders the result live).
//
// Exit codes: 0 served until EOF/shutdown, 1 load or socket failure,
// 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int usage(const char *Tool) {
  std::fprintf(stderr,
               "usage: %s [<image.spkx>] [--socket=<path>] [--no-provenance] "
               "[--access-log=<file>] [--slow-ms=<n>] [--no-observe] "
               "%s %s\n"
               "protocol: one `<command> [<json>]` per line on stdin (or the "
               "socket),\n"
               "one JSON reply per line; commands: load analyze lint explain "
               "slice\n"
               "patch-routine stats metrics shutdown\n",
               Tool, toolopts::jobsUsage(), tooltel::usage());
  std::fprintf(stderr, "budget flags: %s\n", toolbudget::usage());
  return 2;
}

/// Consumes `--<name>=<value>` / `--<name> <value>`.
bool parseStringFlag(int Argc, char **Argv, int &I, const char *Name,
                     std::string &Value_) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Argv[I], Name, Len) != 0)
    return false;
  const char *Value = nullptr;
  if (Argv[I][Len] == '=')
    Value = Argv[I] + Len + 1;
  else if (Argv[I][Len] == '\0')
    Value = I + 1 < Argc ? Argv[++I] : "";
  else
    return false;
  if (*Value == '\0') {
    std::fprintf(stderr, "error: %s expects a value\n", Name);
    std::exit(2);
  }
  Value_ = Value;
  return true;
}

/// Consumes `--slow-ms=<n>` / `--slow-ms <n>` (milliseconds, >= 0).
bool parseSlowMs(int Argc, char **Argv, int &I, int64_t &SlowMs) {
  std::string Value;
  if (!parseStringFlag(Argc, Argv, I, "--slow-ms", Value))
    return false;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0' || Parsed < 0) {
    std::fprintf(stderr, "error: --slow-ms expects milliseconds >= 0\n");
    std::exit(2);
  }
  SlowMs = Parsed;
  return true;
}

int runTool(int Argc, char **Argv) {
  std::string ImagePath, SocketPath, AccessLogPath;
  bool NoProvenance = false, NoObserve = false;
  int64_t SlowMs = -1;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (parseStringFlag(Argc, Argv, I, "--socket", SocketPath))
      ;
    else if (parseStringFlag(Argc, Argv, I, "--access-log", AccessLogPath))
      ;
    else if (parseSlowMs(Argc, Argv, I, SlowMs))
      ;
    else if (std::strcmp(Argv[I], "--no-observe") == 0)
      NoObserve = true;
    else if (std::strcmp(Argv[I], "--no-provenance") == 0)
      NoProvenance = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else if (ImagePath.empty())
      ImagePath = Argv[I];
    else
      return usage(Argv[0]);
  }

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-serve", TelemetryOpts);

  ServerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Budget = BudgetOpts.Budget;
  Opts.RecordProvenance = !NoProvenance;
  // The served tool observes by default (the embeddable library does
  // not); --no-observe restores the zero-timestamp configuration.
  Opts.Observe = !NoObserve;
  Opts.AccessLogPath = AccessLogPath;
  Opts.SlowMs = SlowMs;
  if (NoObserve && (!AccessLogPath.empty() || SlowMs >= 0)) {
    std::fprintf(stderr, "error: --no-observe contradicts --access-log / "
                         "--slow-ms\n");
    return 2;
  }
  Server S(Opts);
  if (!S.startupError().empty()) {
    std::fprintf(stderr, "error: %s\n", S.startupError().c_str());
    return 1;
  }

  if (!ImagePath.empty()) {
    std::string Error;
    std::optional<Image> Img = readImageFile(ImagePath, &Error);
    if (!Img) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (!S.loadImage(std::move(*Img), &Error)) {
      std::fprintf(stderr, "error: cannot analyze '%s': %s\n",
                   ImagePath.c_str(), Error.c_str());
      return 1;
    }
  }

  if (!SocketPath.empty()) {
    std::string Error;
    if (serveSocket(S, SocketPath, &Error) != 0) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    return 0;
  }
  return serveStream(S, stdin, stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-serve");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
