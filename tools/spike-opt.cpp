//===- tools/spike-opt.cpp - post-link optimizer driver ---------------------===//
//
// Runs the Figure 1 optimizations on an image (the Spike workflow).
//
//   spike-opt input.spkx -o output.spkx [--rounds N] [--verify]
//
// --verify additionally executes both images in the simulator and fails
// if observable behaviour changed.  --attribute tags every applied and
// rejected transformation with its justifying summary facts; the records
// land in the --metrics run report (and spike-explain --why-transformed
// prints them interactively).
//
//===----------------------------------------------------------------------===//

#include "opt/AnnotationDeriver.h"
#include "opt/Pipeline.h"
#include "sim/Simulator.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int runTool(int Argc, char **Argv) {
  std::string InputPath, OutputPath;
  unsigned Rounds = 3;
  bool Verify = false;
  bool SelfCheck = false;
  bool DeriveAnnotations = false;
  bool Attribute = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc)
      OutputPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--rounds") == 0 && I + 1 < Argc)
      Rounds = unsigned(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--verify") == 0)
      Verify = true;
    else if (std::strcmp(Argv[I], "--self-check") == 0)
      SelfCheck = true;
    else if (std::strcmp(Argv[I], "--derive-annotations") == 0)
      DeriveAnnotations = true;
    else if (std::strcmp(Argv[I], "--attribute") == 0)
      Attribute = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <input.spkx> -o <output.spkx> "
                   "[--rounds N] [--verify] [--self-check] "
                   "[--derive-annotations] [--attribute] %s %s %s\n",
                   Argv[0], toolopts::jobsUsage(), toolbudget::usage(),
                   tooltel::usage());
      return 2;
    } else
      InputPath = Argv[I];
  }
  if (InputPath.empty() || OutputPath.empty()) {
    std::fprintf(stderr,
                 "usage: %s <input.spkx> -o <output.spkx> "
                 "[--rounds N] [--verify] [--self-check] "
                 "[--derive-annotations] [--attribute] %s %s %s\n",
                 Argv[0], toolopts::jobsUsage(), toolbudget::usage(),
                 tooltel::usage());
    return 2;
  }

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-opt", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(InputPath, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  Image Original = *Img;
  if (DeriveAnnotations) {
    size_t Sites = annotateIndirectCalls(*Img);
    std::printf("derived annotations for %zu indirect call site(s)\n",
                Sites);
  }
  PipelineOptions Opts;
  Opts.MaxRounds = Rounds;
  Opts.LintSelfCheck = SelfCheck;
  Opts.Jobs = Jobs;
  Opts.AttributeTransforms = Attribute;
  Opts.Budget = BudgetOpts.Budget;
  Opts.Cancel = Faults.token();
  PipelineStats Stats = optimizeImage(*Img, CallingConv(), Opts);
  std::printf("rounds:                        %u\n", Stats.Rounds);
  std::printf("dead defs deleted:             %llu\n",
              (unsigned long long)Stats.DeadDefsDeleted);
  std::printf("spill pairs removed:           %llu\n",
              (unsigned long long)Stats.SpillPairsRemoved);
  std::printf("callee-saved regs reallocated: %llu\n",
              (unsigned long long)Stats.SaveRestoreRegsEliminated);
  std::printf("rounds rolled back:            %u\n",
              Stats.RoundsRolledBack);
  std::printf("quarantined routines:          %llu\n",
              (unsigned long long)Stats.QuarantinedRoutines);
  if (Stats.BudgetRetries || Stats.BudgetDegradedRoutines ||
      Stats.SlotFlowSkips || Stats.StoppedOnBudget) {
    std::printf("budget retries:                %u\n", Stats.BudgetRetries);
    std::printf("budget-degraded routines:      %llu\n",
                (unsigned long long)Stats.BudgetDegradedRoutines);
    if (Stats.SlotFlowSkips)
      std::printf("slot-flow passes skipped:      %u\n",
                  Stats.SlotFlowSkips);
    if (Stats.StoppedOnBudget)
      std::printf("optimization stopped early: budget exhausted even with "
                  "every routine degraded\n");
  }
  for (size_t R = 0; R < Stats.PerRound.size(); ++R) {
    const PipelineStats::RoundRecord &Rec = Stats.PerRound[R];
    std::printf("  round %zu: %.4f s, %.2f MB analysis peak, "
                "%llu change(s)%s\n",
                R + 1, Rec.Seconds,
                double(Rec.AnalysisPeakBytes) / (1024.0 * 1024.0),
                (unsigned long long)Rec.Changes,
                Rec.RolledBack ? ", ROLLED BACK" : "");
  }

  if (SelfCheck) {
    for (const std::string &Report : Stats.LintReports)
      std::fprintf(stderr, "self-check: %s\n", Report.c_str());
    if (!Stats.clean()) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: %llu lint regression(s)\n",
                   (unsigned long long)Stats.LintRegressions);
      return 1;
    }
    std::printf("self-check: no lint regressions across %u round(s)\n",
                Stats.Rounds);
  }

  if (Verify) {
    SimResult Before = simulate(Original);
    SimResult After = simulate(*Img);
    if (!Before.sameObservable(After)) {
      std::fprintf(stderr, "VERIFY FAILED: behaviour changed "
                           "(%s/%lld vs %s/%lld)\n",
                   simExitName(Before.Exit), (long long)Before.ExitValue,
                   simExitName(After.Exit), (long long)After.ExitValue);
      return 1;
    }
    std::printf("verify: identical observable behaviour; useful "
                "instructions %llu -> %llu\n",
                (unsigned long long)Before.usefulSteps(),
                (unsigned long long)After.usefulSteps());
  }

  if (!writeImageFile(*Img, OutputPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutputPath.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-opt");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
