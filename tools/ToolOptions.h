//===- tools/ToolOptions.h - Shared --jobs plumbing -----------*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every spike tool accepts the same parallelism flag:
///
///   --jobs=<n>   worker lanes for the parallel analysis engine
///
/// (the two-token form `--jobs <n>` works too).  The default is the
/// hardware concurrency; `--jobs=1` runs everything inline on the main
/// thread.  Every value produces identical output — the engine schedules
/// work over the call graph's SCC condensation, so results, summaries,
/// and telemetry counters do not depend on the lane count (only the
/// pool.steals counter and the analysis.jobs gauge reflect it).
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TOOLS_TOOLOPTIONS_H
#define SPIKE_TOOLS_TOOLOPTIONS_H

#include "support/BuildInfo.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spike {
namespace toolopts {

/// Handles the shared `--version` flag: when present anywhere in the
/// argument list, prints "<tool> <git describe> (<compiler>, <type>,
/// sanitizer=<s>)" on stdout and exits 0.  Called first by every tool
/// main, before any other flag parsing, so `--version` works even when
/// other arguments would be usage errors.
inline void handleVersion(int Argc, char **Argv, const char *Tool) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("%s %s\n", Tool, buildInfoLine().c_str());
      std::exit(0);
    }
  }
}

/// Consumes `--jobs=<n>` / `--jobs <n>` at position \p I of the argument
/// list.  Returns true if Argv[I] was the jobs flag; \p I is advanced
/// past any consumed value token.  A non-numeric or zero count exits
/// with a usage error, matching the tools' flag handling.
inline bool parseJobs(int Argc, char **Argv, int &I, unsigned &Jobs) {
  const char *Value = nullptr;
  if (std::strncmp(Argv[I], "--jobs", 6) == 0) {
    if (Argv[I][6] == '=')
      Value = Argv[I] + 7;
    else if (Argv[I][6] == '\0' && I + 1 < Argc)
      Value = Argv[++I];
  }
  if (!Value)
    return false;
  char *End = nullptr;
  unsigned long Parsed = std::strtoul(Value, &End, 10);
  if (End == Value || *End != '\0' || Parsed == 0 || Parsed > 1024) {
    std::fprintf(stderr, "error: --jobs expects a count in [1, 1024]\n");
    std::exit(2);
  }
  Jobs = unsigned(Parsed);
  return true;
}

/// The usage-line fragment documenting the shared flag.
inline const char *jobsUsage() { return "[--jobs=<n>]"; }

/// The default job count when the flag is absent: the hardware
/// concurrency.
inline unsigned defaultJobs() { return ThreadPool::defaultJobs(); }

} // namespace toolopts
} // namespace spike

#endif // SPIKE_TOOLS_TOOLOPTIONS_H
