//===- tools/spike-objdump.cpp - disassembler driver ------------------------===//
//
// Prints the disassembly of a .spkx image (re-assemblable with spike-as).
//
//   spike-objdump app.spkx [--routine <name>]
//
//===----------------------------------------------------------------------===//

#include "binary/Image.h"
#include "cfg/CfgBuilder.h"
#include "isa/Encoding.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spike;

int main(int Argc, char **Argv) {
  std::string Path, RoutineName;
  unsigned Jobs = toolopts::defaultJobs(); // accepted for CLI uniformity
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--routine") == 0 && I + 1 < Argc)
      RoutineName = Argv[++I];
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <image.spkx> [--routine <name>]\n", Argv[0]);
      return 2;
    } else
      Path = Argv[I];
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: %s <image.spkx> [--routine <name>]\n",
                 Argv[0]);
    return 2;
  }

  tooltel::Emitter Telemetry("spike-objdump", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (RoutineName.empty()) {
    std::string Text;
    disassemble(*Img, Text);
    std::fputs(Text.c_str(), stdout);
    return 0;
  }

  // Single-routine mode: use the CFG partition to find its range.
  Program Prog = buildProgram(*Img, CallingConv());
  for (const Routine &R : Prog.Routines) {
    if (R.Name != RoutineName)
      continue;
    std::printf("%s:  ; [%llu, %llu), %zu blocks\n", R.Name.c_str(),
                (unsigned long long)R.Begin, (unsigned long long)R.End,
                R.Blocks.size());
    for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
      std::optional<Instruction> Inst = decodeInstruction(Img->Code[Address]);
      std::printf("  %llu:\t%s\n", (unsigned long long)Address,
                  Inst ? Inst->str(int64_t(Address)).c_str()
                       : "<bad encoding>");
    }
    return 0;
  }
  std::fprintf(stderr, "error: no routine named '%s'\n",
               RoutineName.c_str());
  return 1;
}
