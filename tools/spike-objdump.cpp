//===- tools/spike-objdump.cpp - disassembler driver ------------------------===//
//
// Prints the disassembly of a .spkx image (re-assemblable with spike-as).
// SP-relative memory operands are annotated with the frame slot they
// touch ("; [sp+16]"), sp adjustments with their direction, and accesses
// the stack analysis cannot pin down are flagged ("; [indexed]",
// "; [sp escapes]").  Annotations are comments, so the output still
// round-trips through spike-as.
//
//   spike-objdump app.spkx [--routine <name>] [--words]
//
// --words prints the routine's raw code as a JSON array of decimal
// strings — the exact "code" payload of a spike-serve `patch-routine`
// command (strings, not numbers: the opcode lives in the top byte and
// JSON numbers are doubles).
//
//===----------------------------------------------------------------------===//

#include "binary/Image.h"
#include "cfg/CfgBuilder.h"
#include "isa/Encoding.h"
#include "isa/StackRef.h"
#include "support/ThreadPool.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;

namespace {

/// Appends the stack annotation of the instruction at \p Address, if any.
void appendAnnotation(const Image &Img, uint64_t Address, unsigned Sp,
                      std::string &Line) {
  std::optional<Instruction> Inst = decodeInstruction(Img.Code[Address]);
  if (!Inst)
    return;
  std::string Comment = stackRefComment(*Inst, Sp);
  if (!Comment.empty())
    Line += "\t; " + Comment;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-objdump");
  std::string Path, RoutineName;
  bool Words = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--routine") == 0 && I + 1 < Argc)
      RoutineName = Argv[++I];
    else if (std::strcmp(Argv[I], "--words") == 0)
      Words = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <image.spkx> [--routine <name>] [--words] "
                   "%s %s\n",
                   Argv[0], toolopts::jobsUsage(), tooltel::usage());
      return 2;
    } else
      Path = Argv[I];
  }
  if (Path.empty() || (Words && RoutineName.empty())) {
    std::fprintf(stderr,
                 "usage: %s <image.spkx> [--routine <name>] [--words] "
                 "%s %s\n",
                 Argv[0], toolopts::jobsUsage(), tooltel::usage());
    return 2;
  }

  tooltel::Emitter Telemetry("spike-objdump", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  unsigned Sp = CallingConv().SpReg;

  if (RoutineName.empty()) {
    std::string Text;
    disassemble(*Img, Text);
    // Annotate instruction lines ("  <addr>:\t<inst>") in place; other
    // lines (labels, directives) pass through untouched.
    std::string Line;
    size_t Start = 0;
    while (Start < Text.size()) {
      size_t Newline = Text.find('\n', Start);
      if (Newline == std::string::npos)
        Newline = Text.size();
      Line = Text.substr(Start, Newline - Start);
      if (Line.size() > 2 && Line[0] == ' ' && Line[1] == ' ' &&
          std::isdigit((unsigned char)Line[2])) {
        uint64_t Address = std::strtoull(Line.c_str() + 2, nullptr, 10);
        if (Address < Img->Code.size())
          appendAnnotation(*Img, Address, Sp, Line);
      }
      std::fputs(Line.c_str(), stdout);
      std::fputc('\n', stdout);
      Start = Newline + 1;
    }
    return 0;
  }

  // Single-routine mode: use the CFG partition to find its range.
  ThreadPool Pool(Jobs);
  Program Prog = buildProgram(*Img, CallingConv(), /*Mem=*/nullptr, {},
                              &Pool);
  for (const Routine &R : Prog.Routines) {
    if (R.Name != RoutineName)
      continue;
    if (Words) {
      std::string Out = "[";
      for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
        if (Address != R.Begin)
          Out += ",";
        Out += "\"" + std::to_string(Img->Code[Address]) + "\"";
      }
      Out += "]";
      std::printf("%s\n", Out.c_str());
      return 0;
    }
    std::printf("%s:  ; [%llu, %llu), %zu blocks\n", R.Name.c_str(),
                (unsigned long long)R.Begin, (unsigned long long)R.End,
                R.Blocks.size());
    for (uint64_t Address = R.Begin; Address < R.End; ++Address) {
      std::optional<Instruction> Inst = decodeInstruction(Img->Code[Address]);
      std::string Line = Inst ? Inst->str(int64_t(Address))
                              : std::string("<bad encoding>");
      if (Inst)
        appendAnnotation(*Img, Address, Sp, Line);
      std::printf("  %llu:\t%s\n", (unsigned long long)Address,
                  Line.c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "error: no routine named '%s'\n",
               RoutineName.c_str());
  return 1;
}
