//===- tools/spike-slice.cpp - dependence-graph slicing driver -------------===//
//
// Answers slicing queries over the instruction dependence graph: which
// instructions does this one transitively depend on (backward), and
// which instructions transitively depend on it (forward)?  The graph
// combines register reaching definitions, interprocedural stack-slot
// dataflow, control dependence, and call/return junction edges, so a
// slice follows values across routine boundaries and through frame
// slots.
//
//   spike-slice app.spkx --backward 123
//   spike-slice app.spkx --forward 42 --dot
//   spike-slice app.spkx --slots [--routine <name>]
//
// --slots prints each routine's solved slot facts (MAY-USE / MAY-DEF /
// LIVE-AT-EXIT, in entry-sp coordinates) instead of a slice.
//
// Exit codes: 0 query answered, 1 load or address failure, 2 usage
// error.  Answers are bit-identical for every --jobs value.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "psg/Analyzer.h"
#include "slice/DeadStore.h"
#include "slice/DepGraph.h"
#include "slice/Slicer.h"
#include "slice/SlotFlow.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;

namespace {

int usage(const char *Tool) {
  std::fprintf(
      stderr,
      "usage: %s <image.spkx> <query> [--dot] [--routine <name>] %s %s\n"
      "queries:\n"
      "  --backward <addr>   what does the instruction at <addr> need?\n"
      "  --forward <addr>    what needs the instruction at <addr>?\n"
      "  --slots             per-routine stack-slot facts (MAY-USE,\n"
      "                      MAY-DEF, LIVE-AT-EXIT, dead stores)\n"
      "--dot renders the slice subgraph as Graphviz instead of a list\n",
      Tool, toolopts::jobsUsage(), tooltel::usage());
  std::fprintf(stderr, "budget flags: %s\n", toolbudget::usage());
  return 2;
}

void printSlice(const Program &Prog, const std::vector<uint64_t> &Slice,
                const char *Direction, uint64_t Seed) {
  std::printf("%s slice of %llu: %zu instruction(s)\n", Direction,
              (unsigned long long)Seed, Slice.size());
  for (uint64_t Address : Slice) {
    int32_t RoutineIndex = findRoutineByAddress(Prog, Address);
    std::printf("  %llu:\t%s\t; %s\n", (unsigned long long)Address,
                Prog.Insts[Address].str(int64_t(Address)).c_str(),
                RoutineIndex >= 0
                    ? Prog.Routines[uint32_t(RoutineIndex)].Name.c_str()
                    : "?");
  }
}

int runTool(int Argc, char **Argv) {
  std::string Path, RoutineName;
  uint64_t Seed = 0;
  bool Backward = false, Forward = false, Slots = false, Dot = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--backward") == 0 && I + 1 < Argc) {
      Backward = true;
      Seed = std::strtoull(Argv[++I], nullptr, 0);
    } else if (std::strcmp(Argv[I], "--forward") == 0 && I + 1 < Argc) {
      Forward = true;
      Seed = std::strtoull(Argv[++I], nullptr, 0);
    } else if (std::strcmp(Argv[I], "--slots") == 0)
      Slots = true;
    else if (std::strcmp(Argv[I], "--dot") == 0)
      Dot = true;
    else if (std::strcmp(Argv[I], "--routine") == 0 && I + 1 < Argc)
      RoutineName = Argv[++I];
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else
      Path = Argv[I];
  }
  if (Path.empty() || (Backward && Forward) ||
      (!Backward && !Forward && !Slots))
    return usage(Argv[0]);

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-slice", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  AnalysisOptions AOpts;
  AOpts.Jobs = Jobs;
  AnalysisResult Analysis;
  if (BudgetOpts.any()) {
    Expected<GovernedAnalysis> Governed = analyzeImageGoverned(
        *Img, CallingConv(), AOpts, BudgetOpts.Budget, Faults.token());
    if (!Governed)
      return toolbudget::exitError(Governed.error());
    Analysis = std::move(Governed->Result);
    for (const std::string &Name : Governed->DegradedRoutines)
      std::fprintf(stderr,
                   "note: %s degraded to an unknowable summary; slices "
                   "through it are conservative\n",
                   Name.c_str());
  } else {
    Analysis = analyzeImage(*Img, CallingConv(), AOpts);
  }
  const Program &Prog = Analysis.Prog;

  // The slice phases get their own governed attempt: a blow here has no
  // retry ladder (a slice is a query, not a transformation) and escapes
  // as a structured error via guardedMain.
  ResourceGovernor SliceGov(BudgetOpts.Budget, &Analysis.Memory,
                            Faults.token());
  const ResourceGovernor *Gov = SliceGov.enabled() ? &SliceGov : nullptr;
  if (Gov)
    SliceGov.arm();
  ThreadPool SlotPool(Jobs);
  SlotFlowResult Flow = solveSlotFlow(Prog, &SlotPool, Gov);

  if (Slots) {
    if (Flow.GlobalEscape)
      std::printf("global escape: an sp value leaks (or a routine is "
                  "quarantined); every fact is {unknown}\n");
    std::vector<DeadStoreCandidate> DeadStores =
        findDeadStackStores(Prog, Flow);
    for (uint32_t RoutineIndex = 0; RoutineIndex < Prog.Routines.size();
         ++RoutineIndex) {
      const Routine &R = Prog.Routines[RoutineIndex];
      if (!RoutineName.empty() && R.Name != RoutineName)
        continue;
      const RoutineSlotFacts &F = Flow.Routines[RoutineIndex];
      std::printf("%s:%s\n", R.Name.c_str(),
                  F.Opaque ? "  (opaque: frame discipline unknown)" : "");
      std::printf("  may-use:      %s\n", F.MayUse.str().c_str());
      std::printf("  may-def:      %s\n", F.MayDef.str().c_str());
      std::printf("  live-at-exit: %s\n", F.LiveAtExit.str().c_str());
      for (const DeadStoreCandidate &C : DeadStores)
        if (C.RoutineIndex == RoutineIndex && C.Dead)
          std::printf("  dead store:   %llu: %s\n",
                      (unsigned long long)C.Address,
                      Prog.Insts[C.Address].str().c_str());
    }
    return 0;
  }

  if (Seed >= Prog.Insts.size()) {
    std::fprintf(stderr, "error: address %llu out of range (have %zu)\n",
                 (unsigned long long)Seed, Prog.Insts.size());
    return 1;
  }

  ThreadPool *Pool = nullptr;
  ThreadPool OwnedPool(Jobs > 1 ? Jobs : 1);
  if (Jobs > 1)
    Pool = &OwnedPool;
  DependenceGraph Graph =
      buildDepGraph(Prog, Analysis.Summaries, Flow, Pool, Gov);
  std::vector<uint64_t> Slice = Backward ? backwardSlice(Graph, Seed)
                                         : forwardSlice(Graph, Seed);
  if (Dot)
    std::fputs(sliceToDot(Prog, Graph, Slice).c_str(), stdout);
  else
    printSlice(Prog, Slice, Backward ? "backward" : "forward", Seed);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-slice");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
