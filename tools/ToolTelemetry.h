//===- tools/ToolTelemetry.h - Shared --trace/--metrics plumbing -*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every spike tool accepts the same observability flags:
///
///   --trace=<file>     write a Chrome trace-event / Perfetto JSON trace
///   --metrics=<file>   write a spike-run-report JSON document
///   --folded=<file>    write folded stacks (speedscope / inferno
///                      `flamegraph.pl` input: one `path;to;frame N`
///                      line per stack, N in self-nanoseconds)
///
/// (the two-token forms `--trace <file>` etc. work too).  A flag given
/// without a file path, or with an empty one, is a usage error — the
/// run is observably misconfigured and silently dropping the request
/// would defeat the point of asking for telemetry.
/// ToolTelemetry ties them to a telemetry::Session: when either flag is
/// given, the Emitter installs a session as the process-wide active one
/// for the tool's whole run and writes the requested files when the tool
/// exits (including early error returns — the Emitter is RAII).  When
/// neither flag is given no session exists and every instrumentation
/// site in the libraries stays a no-op.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TOOLS_TOOLTELEMETRY_H
#define SPIKE_TOOLS_TOOLTELEMETRY_H

#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

namespace spike {
namespace tooltel {

/// Where to write the trace, run report, and folded stacks; empty means
/// "not requested".
struct Options {
  std::string TracePath;
  std::string MetricsPath;
  std::string FoldedPath;

  bool enabled() const {
    return !TracePath.empty() || !MetricsPath.empty() ||
           !FoldedPath.empty();
  }
};

/// Consumes `--trace=<f>` / `--metrics=<f>` / `--folded=<f>` (and their
/// two-token forms) at position \p I of the argument list.  Returns true
/// if Argv[I] was a telemetry flag; \p I is advanced past any consumed
/// value token.  A recognized flag with a missing or empty path exits
/// with a structured usage error, matching toolopts::parseJobs.
inline bool parseFlag(int Argc, char **Argv, int &I, Options &Opts) {
  auto Match = [&](const char *Name, std::string &Into) {
    size_t Len = std::strlen(Name);
    if (std::strncmp(Argv[I], Name, Len) != 0)
      return false;
    const char *Value = nullptr;
    if (Argv[I][Len] == '=')
      Value = Argv[I] + Len + 1;
    else if (Argv[I][Len] == '\0')
      Value = I + 1 < Argc ? Argv[++I] : "";
    else
      return false;
    if (*Value == '\0') {
      std::fprintf(stderr, "error: %s expects a file path\n", Name);
      std::exit(2);
    }
    Into = Value;
    return true;
  };
  return Match("--trace", Opts.TracePath) ||
         Match("--metrics", Opts.MetricsPath) ||
         Match("--folded", Opts.FoldedPath);
}

/// The usage-line suffix documenting the shared flags.
inline const char *usage() {
  return "[--trace=<file>] [--metrics=<file>] [--folded=<file>]";
}

/// Owns the tool run's Session and writes the output files on
/// destruction (or on an explicit finish()).
class Emitter {
public:
  Emitter(const char *Tool, Options Opts) : Opts(std::move(Opts)) {
    if (this->Opts.enabled()) {
      S.emplace(Tool);
      Scope.emplace(*S);
    }
  }

  ~Emitter() { finish(); }

  Emitter(const Emitter &) = delete;
  Emitter &operator=(const Emitter &) = delete;

  /// The session, or null when neither flag was given.
  telemetry::Session *session() { return S ? &*S : nullptr; }

  /// Writes the requested files (idempotent).  A write failure warns on
  /// stderr but never changes the tool's exit status: losing telemetry
  /// must not turn a successful run into a failed one.
  void finish() {
    if (Done || !S)
      return;
    Done = true;
    Scope.reset(); // Stop observing before serializing.
    auto Write = [&](const std::string &Path, const std::string &Text) {
      if (!Path.empty() && !telemetry::writeTextFile(Path, Text))
        std::fprintf(stderr, "warning: cannot write telemetry file '%s'\n",
                     Path.c_str());
    };
    Write(Opts.TracePath, telemetry::traceJson(*S));
    Write(Opts.MetricsPath, telemetry::runReportJson(*S));
    Write(Opts.FoldedPath, telemetry::foldedStacks(*S));
  }

private:
  Options Opts;
  std::optional<telemetry::Session> S;
  std::optional<telemetry::SessionScope> Scope;
  bool Done = false;
};

} // namespace tooltel
} // namespace spike

#endif // SPIKE_TOOLS_TOOLTELEMETRY_H
