//===- tools/spike-sim.cpp - simulator driver --------------------------------===//
//
// Executes a .spkx image and reports its observable outcome.
//
//   spike-sim app.spkx [--args a0 a1 ...] [--max-steps N] [--dump-data]
//
// Exit status is 0 when the program halts, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <algorithm>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace spike;

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-sim");
  std::string Path;
  std::vector<int64_t> Args;
  SimOptions Opts;
  bool DumpData = false;
  bool Profile = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--args") == 0) {
      while (I + 1 < Argc && Argv[I + 1][0] != '-')
        Args.push_back(std::strtoll(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--max-steps") == 0 && I + 1 < Argc) {
      Opts.MaxSteps = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::strcmp(Argv[I], "--dump-data") == 0) {
      DumpData = true;
    } else if (std::strcmp(Argv[I], "--profile") == 0) {
      Profile = Opts.Profile = true;
    } else if (toolopts::parseJobs(Argc, Argv, I, Jobs)) {
    } else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts)) {
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <image.spkx> [--args n...] "
                   "[--max-steps N] [--dump-data] [--profile] %s %s\n",
                   Argv[0], toolopts::jobsUsage(), tooltel::usage());
      return 2;
    } else
      Path = Argv[I];
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <image.spkx> [--args n...] "
                 "[--max-steps N] [--dump-data] [--profile] %s %s\n",
                 Argv[0], toolopts::jobsUsage(), tooltel::usage());
    return 2;
  }

  tooltel::Emitter Telemetry("spike-sim", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  SimResult Result = simulateWithArgs(*Img, Args, Opts);
  std::printf("exit:        %s\n", simExitName(Result.Exit));
  std::printf("value:       %lld\n", (long long)Result.ExitValue);
  std::printf("steps:       %llu (%llu useful)\n",
              (unsigned long long)Result.Steps,
              (unsigned long long)Result.usefulSteps());
  if (DumpData) {
    std::printf("data:");
    for (int64_t Word : Result.FinalData)
      std::printf(" %lld", (long long)Word);
    std::printf("\n");
  }
  if (Profile) {
    // Attribute execution counts to routines and print the hottest.
    ThreadPool Pool(Jobs);
    Program Prog = buildProgram(*Img, CallingConv(), /*Mem=*/nullptr, {},
                                &Pool);
    struct Row {
      std::string Name;
      uint64_t Count;
    };
    std::vector<Row> Rows;
    for (const Routine &R : Prog.Routines) {
      uint64_t Count = 0;
      for (uint64_t A = R.Begin; A < R.End; ++A)
        Count += Result.ExecCounts[A];
      if (Count > 0)
        Rows.push_back({R.Name, Count});
    }
    std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
      return A.Count > B.Count;
    });
    std::printf("profile (dynamic instructions per routine):\n");
    for (size_t I = 0; I < Rows.size() && I < 10; ++I)
      std::printf("  %-20s %llu (%.1f%%)\n", Rows[I].Name.c_str(),
                  (unsigned long long)Rows[I].Count,
                  100.0 * double(Rows[I].Count) / double(Result.Steps));
  }
  return Result.Exit == SimExit::Halted ? 0 : 1;
}
