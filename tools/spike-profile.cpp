//===- tools/spike-profile.cpp - Hot-spot profile reader -------------------===//
//
// Reads a spike-run-report JSON document (written by any tool's
// --metrics flag) and renders the profiling layer's view of it: ranked
// hot-SCC and hot-routine tables, histogram summaries, and per-phase
// attribution coverage.  Can also re-export the report as folded stacks
// (speedscope / inferno flamegraph input) and diff two reports with the
// same percentile-aware thresholds spike-stats uses.
//
//   spike-profile report.json [--topk N] [--folded <out>]
//   spike-profile --diff baseline.json current.json
//                 [--max-counter-growth f] [--max-time-growth f]
//                 [--time-floor s] [--warn-only]
//
// A report whose run degraded routines to unknowable summaries (budget
// blows) is flagged prominently: its hot-spot attribution describes the
// degraded run, not the full-precision one.
//
// Exit status: 0 ok (or --warn-only), 1 diff regressions, 2 usage or
// unparseable input.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include "telemetry/RunReport.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace spike;
using namespace spike::telemetry;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <report.json> [--topk <n>] [--folded <out>]\n"
               "       %s --diff <baseline.json> <current.json> "
               "[--max-counter-growth <fraction>] "
               "[--max-time-growth <fraction>] [--time-floor <seconds>] "
               "[--warn-only]\n",
               Prog, Prog);
  return 2;
}

std::optional<RunReport> load(const std::string &Path) {
  std::string Error;
  std::optional<RunReport> Report = readRunReportFile(Path, &Error);
  if (!Report)
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
  return Report;
}

/// Prints the degraded-run banner when the profile lost precision to its
/// budget.  The attribution below describes the degraded run, and a
/// reader comparing profiles must know that before trusting a delta.
void printDegradedBanner(const RunReport &Report) {
  uint64_t BudgetBlows = 0;
  if (auto It = Report.Counters.find("degrade.budget_blows");
      It != Report.Counters.end())
    BudgetBlows = It->second;
  if (Report.Degradations.empty() && BudgetBlows == 0)
    return;
  std::printf("!! DEGRADED PROFILE: %zu routine(s) degraded to unknowable "
              "summaries",
              Report.Degradations.size());
  if (BudgetBlows != 0)
    std::printf(", %llu budget blow(s)", (unsigned long long)BudgetBlows);
  std::printf("\n");
  for (const auto &[Key, Count] : Report.degradeCounts())
    std::printf("!!   %s = %llu\n", Key.c_str(), (unsigned long long)Count);
  std::printf("!! hot-spot attribution below reflects the degraded run\n");
}

std::string formatMs(uint64_t Ns) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.3f", double(Ns) / 1e6);
  return Buffer;
}

/// The ranked hot-SCC table: group-granularity hotspot rows (empty
/// Routine), by measured time descending.  Ties (all-zero times in a
/// scrubbed or very fast run) fall back to pops, then to the
/// deterministic (phase, scc) identity.
void printHotSccs(const RunReport &Report, unsigned TopK) {
  std::vector<const RunReport::HotSpot *> Rows;
  for (const RunReport::HotSpot &H : Report.Hotspots)
    if (H.Routine.empty() && H.Scc >= 0)
      Rows.push_back(&H);
  if (Rows.empty())
    return;
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const RunReport::HotSpot *A, const RunReport::HotSpot *B) {
                     if (A->Ns != B->Ns)
                       return A->Ns > B->Ns;
                     if (A->Pops != B->Pops)
                       return A->Pops > B->Pops;
                     if (A->Phase != B->Phase)
                       return A->Phase < B->Phase;
                     return A->Scc < B->Scc;
                   });
  std::printf("\nhot SCC groups (top %u of %zu):\n", TopK, Rows.size());
  std::printf("  %-42s %5s %10s %6s %10s %10s\n", "phase", "scc", "pops",
              "iters", "set_ops", "ms");
  for (size_t I = 0; I < Rows.size() && I < TopK; ++I) {
    const RunReport::HotSpot &H = *Rows[I];
    std::printf("  %-42s %5lld %10llu %6llu %10llu %10s\n", H.Phase.c_str(),
                (long long)H.Scc, (unsigned long long)H.Pops,
                (unsigned long long)H.Iters, (unsigned long long)H.SetOps,
                formatMs(H.Ns).c_str());
  }
}

/// The ranked hot-routine table: routine-granularity rows aggregated by
/// name across phases and groups, by attributed time descending (pops,
/// then name, break ties).
void printHotRoutines(const RunReport &Report, unsigned TopK) {
  struct Agg {
    uint64_t Pops = 0;
    uint64_t Ns = 0;
  };
  std::map<std::string, Agg> ByRoutine;
  for (const RunReport::HotSpot &H : Report.Hotspots)
    if (!H.Routine.empty()) {
      Agg &A = ByRoutine[H.Routine];
      A.Pops += H.Pops;
      A.Ns += H.Ns;
    }
  if (ByRoutine.empty())
    return;
  std::vector<std::pair<std::string, Agg>> Rows(ByRoutine.begin(),
                                                ByRoutine.end());
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &A, const auto &B) {
                     if (A.second.Ns != B.second.Ns)
                       return A.second.Ns > B.second.Ns;
                     if (A.second.Pops != B.second.Pops)
                       return A.second.Pops > B.second.Pops;
                     return A.first < B.first;
                   });
  std::printf("\nhot routines (top %u of %zu):\n", TopK, Rows.size());
  std::printf("  %-42s %10s %10s\n", "routine", "pops", "ms");
  for (size_t I = 0; I < Rows.size() && I < TopK; ++I)
    std::printf("  %-42s %10llu %10s\n", Rows[I].first.c_str(),
                (unsigned long long)Rows[I].second.Pops,
                formatMs(Rows[I].second.Ns).c_str());
}

/// The histogram summary: moments and nearest-rank percentiles of every
/// recorded distribution, in name order.
void printHistograms(const RunReport &Report) {
  if (Report.Histograms.empty())
    return;
  std::printf("\nhistograms:\n");
  std::printf("  %-34s %10s %12s %12s %12s %12s\n", "name", "count", "mean",
              "p50", "p90", "max");
  for (const auto &[Name, H] : Report.Histograms) {
    double Mean = H.Count == 0 ? 0 : double(H.Sum) / double(H.Count);
    std::printf("  %-34s %10llu %12.1f %12llu %12llu %12llu\n", Name.c_str(),
                (unsigned long long)H.Count, Mean,
                (unsigned long long)H.percentile(50),
                (unsigned long long)H.percentile(90),
                (unsigned long long)H.Max);
  }
}

/// Per-phase attribution coverage: how much of each instrumented span's
/// wall time the group rows account for.  At --jobs=1 the attributed
/// sum approaches the span total; at higher job counts attributed CPU
/// time legitimately exceeds the span's wall time.
void printCoverage(const RunReport &Report) {
  struct Agg {
    uint64_t Ns = 0;
    uint64_t Pops = 0;
  };
  std::map<std::string, Agg> ByPhase;
  for (const RunReport::HotSpot &H : Report.Hotspots)
    if (H.Routine.empty() || H.Scc < 0) {
      Agg &A = ByPhase[H.Phase];
      A.Ns += H.Ns;
      A.Pops += H.Pops;
    }
  if (ByPhase.empty())
    return;
  std::printf("\nattribution coverage (attributed vs span wall time):\n");
  std::printf("  %-42s %10s %12s %12s %8s\n", "phase", "pops",
              "attributed ms", "span ms", "cover");
  for (const auto &[Phase, A] : ByPhase) {
    double SpanSeconds = Report.phaseSeconds(Phase);
    uint64_t SpanNs = uint64_t(SpanSeconds * 1e9 + 0.5);
    double Cover = SpanNs == 0 ? 0 : 100.0 * double(A.Ns) / double(SpanNs);
    std::printf("  %-42s %10llu %12s %12s %7.1f%%\n", Phase.c_str(),
                (unsigned long long)A.Pops, formatMs(A.Ns).c_str(),
                formatMs(SpanNs).c_str(), Cover);
  }
}

/// Re-exports a parsed report as folded stacks, through the same
/// renderer live sessions use.
bool writeFolded(const RunReport &Report, const std::string &Path) {
  std::vector<PhaseRow> Rows;
  Rows.reserve(Report.Phases.size());
  for (const RunReport::Phase &P : Report.Phases)
    Rows.push_back({P.Path, P.Seconds, P.Count});
  std::vector<HotSpotRecord> Spots;
  Spots.reserve(Report.Hotspots.size());
  for (const RunReport::HotSpot &H : Report.Hotspots)
    Spots.push_back({H.Phase, H.Routine, H.Scc, H.Pops, H.Iters, H.SetOps,
                     H.Ns});
  std::string Text = foldedStacks(Report.Tool, Rows, Spots);
  if (!writeTextFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::printf("\nfolded stacks written to %s (%zu bytes)\n", Path.c_str(),
              Text.size());
  return true;
}

int runReport(const std::string &Path, unsigned TopK,
              const std::string &FoldedPath) {
  std::optional<RunReport> Report = load(Path);
  if (!Report)
    return 2;
  std::printf("profile: %s (%s, %.4f s total)\n", Path.c_str(),
              Report->Tool.c_str(), Report->TotalSeconds);
  printDegradedBanner(*Report);
  printHotSccs(*Report, TopK);
  printHotRoutines(*Report, TopK);
  printHistograms(*Report);
  printCoverage(*Report);
  if (Report->Hotspots.empty() && Report->Histograms.empty())
    std::printf("no profiling data: the run predates the profiling layer "
                "or recorded no solver work\n");
  if (!FoldedPath.empty() && !writeFolded(*Report, FoldedPath))
    return 2;
  return 0;
}

int runDiff(const std::string &BaselinePath, const std::string &CurrentPath,
            const DiffOptions &Opts, bool WarnOnly) {
  std::optional<RunReport> Baseline = load(BaselinePath);
  if (!Baseline)
    return 2;
  std::optional<RunReport> Current = load(CurrentPath);
  if (!Current)
    return 2;
  std::printf("baseline: %s (%s, %.4f s)\n", BaselinePath.c_str(),
              Baseline->Tool.c_str(), Baseline->TotalSeconds);
  printDegradedBanner(*Baseline);
  std::printf("current:  %s (%s, %.4f s)\n", CurrentPath.c_str(),
              Current->Tool.c_str(), Current->TotalSeconds);
  printDegradedBanner(*Current);

  ReportDiff Diff = diffReports(*Baseline, *Current, Opts);
  std::fputs(Diff.str().c_str(), stdout);

  if (Diff.Regressions != 0 && WarnOnly)
    std::printf("warn-only: exit status suppressed\n");
  return Diff.Regressions != 0 && !WarnOnly ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-profile");
  std::vector<std::string> Paths;
  bool DiffMode = false, WarnOnly = false;
  unsigned TopK = 10;
  std::string FoldedPath;
  DiffOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--diff") == 0)
      DiffMode = true;
    else if (std::strcmp(Argv[I], "--warn-only") == 0)
      WarnOnly = true;
    else if (std::strcmp(Argv[I], "--topk") == 0 && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long Parsed = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || Parsed == 0) {
        std::fprintf(stderr, "error: --topk expects a positive count\n");
        return 2;
      }
      TopK = unsigned(Parsed);
    } else if (std::strcmp(Argv[I], "--folded") == 0 && I + 1 < Argc)
      FoldedPath = Argv[++I];
    else if (std::strncmp(Argv[I], "--folded=", 9) == 0)
      FoldedPath = Argv[I] + 9;
    else if (std::strcmp(Argv[I], "--max-counter-growth") == 0 && I + 1 < Argc)
      Opts.MaxCounterGrowth = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--max-time-growth") == 0 && I + 1 < Argc)
      Opts.MaxTimeGrowth = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--time-floor") == 0 && I + 1 < Argc)
      Opts.TimeFloorSeconds = std::atof(Argv[++I]);
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else
      Paths.push_back(Argv[I]);
  }

  if (DiffMode) {
    if (Paths.size() != 2)
      return usage(Argv[0]);
    return runDiff(Paths[0], Paths[1], Opts, WarnOnly);
  }
  if (Paths.size() != 1)
    return usage(Argv[0]);
  return runReport(Paths[0], TopK, FoldedPath);
}
