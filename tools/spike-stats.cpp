//===- tools/spike-stats.cpp - RunReport differ ------------------------------===//
//
// Compares two spike-run-report JSON documents (written by any tool's
// --metrics flag) and reports counter deltas, per-phase time ratios, and
// a threshold-based regression verdict.
//
//   spike-stats baseline.json current.json
//               [--max-counter-growth <fraction>] (default 0.10)
//               [--max-time-growth <fraction>]    (default 0.25)
//               [--time-floor <seconds>]          (default 0.01)
//               [--warn-only]
//
// A counter regresses when it grows more than --max-counter-growth over
// a nonzero baseline; a phase regresses when both runs spend more than
// --time-floor seconds in it and the current run is more than
// --max-time-growth slower.  Growth over a zero baseline never
// regresses (new counters appear whenever new instrumentation lands).
//
// Exit status: 0 no regressions (or --warn-only), 1 regressions,
// 2 usage or unparseable input.
//
//===----------------------------------------------------------------------===//

#include "telemetry/RunReport.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;
using namespace spike::telemetry;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> "
               "[--max-counter-growth <fraction>] "
               "[--max-time-growth <fraction>] [--time-floor <seconds>] "
               "[--warn-only] %s %s\n",
               Prog, toolopts::jobsUsage(), tooltel::usage());
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-stats");
  std::string BaselinePath, CurrentPath;
  DiffOptions Opts;
  bool WarnOnly = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (std::strcmp(Argv[I], "--max-counter-growth") == 0 && I + 1 < Argc)
      Opts.MaxCounterGrowth = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--max-time-growth") == 0 && I + 1 < Argc)
      Opts.MaxTimeGrowth = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--time-floor") == 0 && I + 1 < Argc)
      Opts.TimeFloorSeconds = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--warn-only") == 0)
      WarnOnly = true;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else if (BaselinePath.empty())
      BaselinePath = Argv[I];
    else if (CurrentPath.empty())
      CurrentPath = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (BaselinePath.empty() || CurrentPath.empty())
    return usage(Argv[0]);

  tooltel::Emitter Telemetry("spike-stats", TelemetryOpts);
  telemetry::Span DiffSpan("stats.diff");

  std::string Error;
  std::optional<RunReport> Baseline = readRunReportFile(BaselinePath, &Error);
  if (!Baseline) {
    std::fprintf(stderr, "error: %s: %s\n", BaselinePath.c_str(),
                 Error.c_str());
    return 2;
  }
  Error.clear();
  std::optional<RunReport> Current = readRunReportFile(CurrentPath, &Error);
  if (!Current) {
    std::fprintf(stderr, "error: %s: %s\n", CurrentPath.c_str(),
                 Error.c_str());
    return 2;
  }

  std::printf("baseline: %s (%s, %.4f s)\n", BaselinePath.c_str(),
              Baseline->Tool.c_str(), Baseline->TotalSeconds);
  std::printf("current:  %s (%s, %.4f s)\n", CurrentPath.c_str(),
              Current->Tool.c_str(), Current->TotalSeconds);

  // Different binaries explain most timing deltas on their own; say so
  // up front (informational — never a regression by itself).
  if (!Baseline->Build.empty() && !Current->Build.empty() &&
      Baseline->Build != Current->Build) {
    auto Field = [](const RunReport &R, const char *K) {
      auto It = R.Build.find(K);
      return It == R.Build.end() ? std::string("?") : It->second;
    };
    std::printf("note: reports come from different builds "
                "(baseline %s/%s/%s, current %s/%s/%s)\n",
                Field(*Baseline, "git").c_str(),
                Field(*Baseline, "type").c_str(),
                Field(*Baseline, "sanitizer").c_str(),
                Field(*Current, "git").c_str(),
                Field(*Current, "type").c_str(),
                Field(*Current, "sanitizer").c_str());
  }

  ReportDiff Diff = diffReports(*Baseline, *Current, Opts);
  std::fputs(Diff.str().c_str(), stdout);

  if (Diff.Regressions != 0 && WarnOnly)
    std::printf("warn-only: exit status suppressed\n");
  return Diff.Regressions != 0 && !WarnOnly ? 1 : 0;
}
