//===- tools/ToolBudget.h - Shared resource-budget plumbing ---*- C++ -*-===//
//
// Part of the spike-psg project (Goodwin, PLDI 1997 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every spike tool accepts the same resource-governance flags:
///
///   --deadline-ms=<ms>      wall-clock budget per analysis attempt
///   --mem-budget-mb=<mb>    ceiling on live analysis bytes
///   --max-iters=<n>         fixpoint-iteration cap per SCC group
///                           (the only deterministic trigger)
///   --inject-fault=<kind>@<n>
///                           schedule one deterministic fault:
///                           alloc@N, task-throw@N, deadline-skew@N,
///                           cancel@N
///
/// (two-token forms work too).  A blown budget degrades the blown SCC
/// group's routines to Section 3.5 unknowable summaries and retries —
/// sound, never wrong — and the tool reports what was degraded.  When
/// degradation cannot help (cancellation, a budget too small for even a
/// fully degraded run, an injected environment fault), the tool exits
/// with a structured Status error via guardedMain() below.
///
//===----------------------------------------------------------------------===//

#ifndef SPIKE_TOOLS_TOOLBUDGET_H
#define SPIKE_TOOLS_TOOLBUDGET_H

#include "support/Budget.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace spike {
namespace toolbudget {

/// Everything the shared flags configure.
struct Options {
  BudgetOptions Budget;
  faultinject::FaultPlan Fault; ///< Kind None when --inject-fault absent.

  bool any() const {
    return Budget.any() || Fault.Kind != faultinject::FaultKind::None;
  }
};

namespace detail {

/// Consumes `--<name>=<v>` / `--<name> <v>`; null when Argv[I] is a
/// different flag.
inline const char *flagValue(int Argc, char **Argv, int &I,
                             const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Argv[I], Name, Len) != 0)
    return nullptr;
  if (Argv[I][Len] == '=')
    return Argv[I] + Len + 1;
  if (Argv[I][Len] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

inline uint64_t parseCount(const char *Value, const char *Flag) {
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Value, &End, 10);
  if (End == Value || *End != '\0' || Parsed == 0) {
    std::fprintf(stderr, "error: %s expects a positive count\n", Flag);
    std::exit(2);
  }
  return uint64_t(Parsed);
}

} // namespace detail

/// Consumes one budget/fault flag at position \p I of the argument list;
/// returns true if Argv[I] was one of them.  Malformed values exit with
/// a usage error, matching the tools' flag handling.
inline bool parseFlag(int Argc, char **Argv, int &I, Options &Opts) {
  if (const char *V = detail::flagValue(Argc, Argv, I, "--deadline-ms")) {
    Opts.Budget.DeadlineMs = detail::parseCount(V, "--deadline-ms");
    return true;
  }
  if (const char *V = detail::flagValue(Argc, Argv, I, "--mem-budget-mb")) {
    Opts.Budget.MemBudgetMB = detail::parseCount(V, "--mem-budget-mb");
    return true;
  }
  if (const char *V = detail::flagValue(Argc, Argv, I, "--max-iters")) {
    Opts.Budget.MaxIterations = detail::parseCount(V, "--max-iters");
    return true;
  }
  if (const char *V = detail::flagValue(Argc, Argv, I, "--inject-fault")) {
    std::string Err;
    if (!faultinject::parsePlan(V, Opts.Fault, Err)) {
      std::fprintf(stderr, "error: --inject-fault: %s\n", Err.c_str());
      std::exit(2);
    }
    return true;
  }
  return false;
}

/// The usage-line fragment documenting the shared flags.
inline const char *usage() {
  return "[--deadline-ms=<ms>] [--mem-budget-mb=<mb>] [--max-iters=<n>] "
         "[--inject-fault=<kind>@<n>]";
}

/// Owns the run's fault injector (installed for the session's lifetime
/// when a fault was scheduled) and the cooperative cancellation token.
/// Construct one in main() after flag parsing, before any analysis.
class Session {
public:
  explicit Session(const Options &Opts) {
    if (Opts.Fault.Kind != faultinject::FaultKind::None) {
      Inj.emplace(Opts.Fault);
      Installed.emplace(*Inj);
    }
  }

  CancellationToken *token() { return &Token; }

private:
  std::optional<faultinject::Injector> Inj;
  std::optional<faultinject::Scope> Installed;
  CancellationToken Token;
};

/// Prints \p S as the tool's structured error and returns the error exit
/// code.
inline int exitError(const Status &S) {
  std::fprintf(stderr, "error: %s\n", S.str().c_str());
  return 1;
}

/// Runs \p Body (the tool's real main) under the robustness contract:
/// every budget or injected-fault failure mode becomes a structured
/// Status error on stderr and exit code 1, never an uncaught exception.
template <typename Fn> int guardedMain(Fn &&Body) {
  try {
    return Body();
  } catch (const BudgetBlownError &E) {
    return exitError(E.toStatus());
  } catch (const faultinject::TaskFault &F) {
    return exitError(Status::error(ErrCode::InjectedFault, F.what()));
  } catch (const std::bad_alloc &) {
    // A scheduled alloc fault and a genuine OOM take the same exit: the
    // process ran out of the memory it was allowed.
    return exitError(Status::error(
        ErrCode::MemBudgetExceeded,
        "allocation failed while analyzing (out of memory or injected "
        "alloc fault)"));
  }
}

} // namespace toolbudget
} // namespace spike

#endif // SPIKE_TOOLS_TOOLBUDGET_H
