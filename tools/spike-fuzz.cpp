//===- tools/spike-fuzz.cpp - fault-injection fuzzer for image ingestion ---===//
//
// Deterministic, seeded mutation fuzzing of the whole ingestion and
// optimization stack:
//
//   spike-fuzz [--seed <n>] [--iterations <n>] [--artifact-dir <dir>]
//              [--skip-oracle] [--verbose]
//
// Two services:
//
//   1. Soundness oracle (startup).  For every synthetic profile, the
//      exact interprocedural analysis is compared against re-analyses
//      with individual routines force-quarantined: degrading a routine
//      to the unknowable-code model may only widen may-sets and narrow
//      must-sets of every other routine.  A violation means quarantine
//      degradation is not conservative — the one property the whole
//      hardening scheme rests on.
//
//   2. Mutation loop.  Each iteration derives a mutant from a corpus of
//      valid images (byte flips, truncation, extension, word overwrites,
//      structured symbol / jump-table / annotation / entry corruption,
//      two-image crossover) and drives it through
//      load -> validate -> analyze -> lint -> optimize, asserting the
//      ingestion trichotomy: every mutant ends as a *clean error* (load
//      rejected with a structured code), a *quarantined-but-sound*
//      result (strict validation findings, offenders quarantined with
//      worst-case summaries, SL011 reported, optimizer leaves their
//      bytes alone), or a *full result* (no strict finding, normal
//      pipeline).  Nothing may crash, hang, or silently mis-optimize.
//
//   3. Serve arm (--serve-iterations N).  Each iteration runs one
//      spike-serve session in-process: a deterministic random command
//      stream (valid queries, routine patches, image loads, malformed
//      lines, truncated JSON, random batching) against the resident
//      server.  Every reply must be one well-formed JSON object, the
//      server must never die, and at the end of the stream the resident
//      summaries, provenance, and slot facts must be bit-identical to a
//      fresh full solve of the final patched image (the fresh-solve
//      oracle mirroring tests/serve_test.cpp).
//
// Exit status: 0 all iterations clean, 1 any property violated (the
// offending mutant is written to --artifact-dir if given), 2 usage.
//
//===----------------------------------------------------------------------===//

#include "binary/Validator.h"
#include "isa/Encoding.h"
#include "lint/Linter.h"
#include "opt/Pipeline.h"
#include "psg/Analyzer.h"
#include "serve/Serve.h"
#include "slice/Slicer.h"
#include "slice/SlotFlow.h"
#include "support/Rng.h"
#include "support/Stopwatch.h"
#include "synth/CfgGenerator.h"
#include "synth/ExecGenerator.h"
#include "synth/Profiles.h"
#include "telemetry/Json.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace spike;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--seed <n>] [--iterations <n>] "
               "[--serve-iterations <n>] "
               "[--artifact-dir <dir>] [--skip-oracle] [--verbose] "
               "%s %s %s\n",
               Prog, toolopts::jobsUsage(), toolbudget::usage(),
               tooltel::usage());
  return 2;
}

struct FuzzConfig {
  uint64_t Seed = 1;
  uint64_t Iterations = 10000;
  uint64_t ServeIterations = 0;
  std::string ArtifactDir;
  bool SkipOracle = false;
  bool Verbose = false;
  unsigned Jobs = 1;
  toolbudget::Options Budget;
  CancellationToken *Cancel = nullptr;
};

/// Global failure sink: remembers the first violation and counts all.
struct Verdicts {
  uint64_t Failures = 0;
  std::string FirstReport;

  void fail(const std::string &Report) {
    ++Failures;
    if (FirstReport.empty())
      FirstReport = Report;
    std::fprintf(stderr, "FAIL: %s\n", Report.c_str());
  }
};

#define FUZZ_CHECK(Cond, V, Context)                                     \
  do {                                                                   \
    if (!(Cond))                                                         \
      (V).fail(std::string(Context) + ": " #Cond);                       \
  } while (0)

//===----------------------------------------------------------------------===//
// Soundness oracle
//===----------------------------------------------------------------------===//

/// \p Outer must be a superset of \p Inner (top swallows everything).
bool slotContainsAll(const SlotSet &Outer, const SlotSet &Inner) {
  return (Outer | Inner) == Outer;
}

/// Compares the analysis of \p Img with \p Victim force-quarantined
/// against the exact analysis \p Exact.  Sound degradation may only
/// widen call-used / call-killed / live sets and narrow raw MUST-DEF of
/// every routine that is not itself quarantined.  The same monotonicity
/// contract holds for the slot dataflow (\p ExactFlow): degraded slot
/// may-sets only widen, opaqueness is never lost.
void checkDegradationSound(const Image &Img, const AnalysisResult &Exact,
                           const SlotFlowResult &ExactFlow,
                           const std::string &Victim, Verdicts &V,
                           const std::string &Context, unsigned Jobs) {
  AnalysisOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cfg.ForceQuarantine.push_back(Victim);
  AnalysisResult Degraded = analyzeImage(Img, CallingConv(), Opts);

  const std::string Where = Context + " victim=" + Victim;
  FUZZ_CHECK(Degraded.Prog.Routines.size() == Exact.Prog.Routines.size(),
             V, Where);
  if (Degraded.Prog.Routines.size() != Exact.Prog.Routines.size())
    return;

  for (uint32_t R = 0; R < Exact.Prog.Routines.size(); ++R) {
    if (Degraded.Prog.Routines[R].Quarantined)
      continue; // Its own summary is worst-case by construction.
    const RoutineResults &E = Exact.Summaries.Routines[R];
    const RoutineResults &D = Degraded.Summaries.Routines[R];
    for (uint32_t Entry = 0; Entry < E.EntrySummaries.size(); ++Entry) {
      const std::string At =
          Where + " routine=" + Exact.Prog.Routines[R].Name +
          " entrance=" + std::to_string(Entry);
      FUZZ_CHECK(D.EntrySummaries[Entry].Used.containsAll(
                     E.EntrySummaries[Entry].Used),
                 V, At + " call-used shrank");
      FUZZ_CHECK(D.EntrySummaries[Entry].Killed.containsAll(
                     E.EntrySummaries[Entry].Killed),
                 V, At + " call-killed shrank");
      FUZZ_CHECK(D.LiveAtEntry[Entry].containsAll(E.LiveAtEntry[Entry]),
                 V, At + " live-at-entry shrank");
      // The extracted Defined summary is capped by MAY-DEF and is not
      // monotone on halt-only paths; the unfiltered MUST-DEF is.
      FUZZ_CHECK(Exact.entrySets(R, Entry).MustDef.containsAll(
                     Degraded.entrySets(R, Entry).MustDef),
                 V, At + " must-def grew");
    }
    for (uint32_t Exit = 0; Exit < E.LiveAtExit.size(); ++Exit)
      FUZZ_CHECK(D.LiveAtExit[Exit].containsAll(E.LiveAtExit[Exit]), V,
                 Where + " routine=" + Exact.Prog.Routines[R].Name +
                     " exit=" + std::to_string(Exit) +
                     " live-at-exit shrank");
  }

  // Slot dataflow under the same degradation.  Quarantining any routine
  // triggers the global escape collapse, and no routine's slot facts may
  // get more precise than the exact run's.
  SlotFlowResult DegradedFlow = solveSlotFlow(Degraded.Prog, Jobs);
  FUZZ_CHECK(DegradedFlow.GlobalEscape, V,
             Where + " quarantine without slot global escape");
  FUZZ_CHECK(!ExactFlow.GlobalEscape || DegradedFlow.GlobalEscape, V,
             Where + " slot global escape lost");
  for (uint32_t R = 0; R < Exact.Prog.Routines.size(); ++R) {
    if (Degraded.Prog.Routines[R].Quarantined)
      continue;
    const RoutineSlotFacts &EF = ExactFlow.Routines[R];
    const RoutineSlotFacts &DF = DegradedFlow.Routines[R];
    const std::string At =
        Where + " routine=" + Exact.Prog.Routines[R].Name;
    FUZZ_CHECK(!EF.Opaque || DF.Opaque, V, At + " slot opaqueness lost");
    FUZZ_CHECK(slotContainsAll(DF.MayUse, EF.MayUse), V,
               At + " slot may-use shrank");
    FUZZ_CHECK(slotContainsAll(DF.MayDef, EF.MayDef), V,
               At + " slot may-def shrank");
    FUZZ_CHECK(slotContainsAll(DF.LiveAtExit, EF.LiveAtExit), V,
               At + " slot live-at-exit shrank");
  }
}

/// Runs the oracle over every synthetic profile: each routine of each
/// image is force-quarantined in turn (bounded per image to keep the
/// startup cost sane for large profiles).
void runOracle(const std::vector<Image> &Corpus, Verdicts &V,
               bool Verbose, unsigned Jobs) {
  AnalysisOptions ExactOpts;
  ExactOpts.Jobs = Jobs;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    const Image &Img = Corpus[I];
    AnalysisResult Exact = analyzeImage(Img, CallingConv(), ExactOpts);
    SlotFlowResult ExactFlow = solveSlotFlow(Exact.Prog, Jobs);
    uint32_t Count = uint32_t(Exact.Prog.Routines.size());
    // All routines for small images, an even stride for big ones.
    uint32_t Step = Count <= 16 ? 1 : Count / 16;
    const std::string Context = "oracle corpus[" + std::to_string(I) + "]";
    for (uint32_t R = 0; R < Count; R += Step)
      checkDegradationSound(Img, Exact, ExactFlow,
                            Exact.Prog.Routines[R].Name, V, Context, Jobs);
    if (Verbose)
      std::fprintf(stderr, "%s: %u routines checked\n", Context.c_str(),
                   (Count + Step - 1) / Step);
  }
}

//===----------------------------------------------------------------------===//
// Mutators
//===----------------------------------------------------------------------===//

/// Byte-level corruption of a serialized image.
std::vector<uint8_t> mutateBytes(std::vector<uint8_t> Bytes, Rng &Rand) {
  if (Bytes.empty())
    return Bytes;
  switch (Rand.below(4)) {
  case 0: { // flip 1-16 bytes
    unsigned Flips = 1 + unsigned(Rand.below(16));
    for (unsigned F = 0; F < Flips; ++F)
      Bytes[Rand.below(Bytes.size())] ^= uint8_t(1 + Rand.below(255));
    break;
  }
  case 1: // truncate
    Bytes.resize(Rand.below(Bytes.size()));
    break;
  case 2: { // extend with garbage
    unsigned Extra = 1 + unsigned(Rand.below(64));
    for (unsigned E = 0; E < Extra; ++E)
      Bytes.push_back(uint8_t(Rand.below(256)));
    break;
  }
  default: { // overwrite an aligned word (section-count lies, wild
             // addresses, undecodable opcodes — depending on position)
    static const uint64_t Interesting[] = {
        0,
        1,
        0x7f,
        0xff,
        0xffffffffull,
        0x7fffffffffffffffull,
        ~uint64_t(0),
    };
    uint64_t Word = Rand.chance(0.5)
                        ? Interesting[Rand.below(7)]
                        : Rand.below(~uint64_t(0));
    size_t Slots = Bytes.size() / 8;
    if (Slots == 0)
      break;
    size_t Offset = Rand.below(Slots) * 8;
    for (unsigned B = 0; B < 8; ++B)
      Bytes[Offset + B] = uint8_t(Word >> (8 * B));
    break;
  }
  }
  return Bytes;
}

/// Structured corruption: parse-level lies a byte flip rarely produces.
std::vector<uint8_t> mutateStructured(Image Img, Rng &Rand) {
  uint64_t CodeSize = Img.Code.size();
  auto WildAddress = [&]() -> uint64_t {
    switch (Rand.below(3)) {
    case 0:
      return CodeSize + Rand.below(1000);          // escaping
    case 1:
      return Rand.below(CodeSize ? CodeSize : 1);  // misaligned semantics
    default:
      return ~uint64_t(0) - Rand.below(16);        // wrap-around bait
    }
  };
  switch (Rand.below(6)) {
  case 0: // symbol corruption: wild address, duplicate, or shuffle
    if (!Img.Symbols.empty()) {
      Symbol &Sym = Img.Symbols[Rand.below(Img.Symbols.size())];
      if (Rand.chance(0.5))
        Sym.Address = WildAddress();
      else
        Img.Symbols.push_back(Sym); // duplicate (unsorted too)
    }
    break;
  case 1: // jump-table corruption: wild target or emptied table
    if (!Img.JumpTables.empty()) {
      JumpTable &Table = Img.JumpTables[Rand.below(Img.JumpTables.size())];
      if (Table.Targets.empty() || Rand.chance(0.3))
        Table.Targets.clear();
      else
        Table.Targets[Rand.below(Table.Targets.size())] = WildAddress();
    }
    break;
  case 2: // dangling table index / wild call target in code
    if (CodeSize != 0) {
      uint64_t Address = Rand.below(CodeSize);
      Instruction Inst = Rand.chance(0.5)
                             ? inst::jmpTab(1, int32_t(Rand.below(1000)))
                             : inst::jsr(int32_t(Rand.below(100000)));
      Img.Code[Address] = encodeInstruction(Inst);
    }
    break;
  case 3: { // bogus annotation
    IndirectCallAnnotation Annot;
    Annot.Address = WildAddress();
    Img.CallAnnotations.push_back(Annot);
    break;
  }
  case 4: // wild entry point
    Img.EntryAddress = WildAddress();
    break;
  default: // undecodable word
    if (CodeSize != 0)
      Img.Code[Rand.below(CodeSize)] =
          ~uint64_t(0) - Rand.below(1u << 20);
    break;
  }
  return writeImage(Img);
}

/// Splices the head of one serialized image onto the tail of another.
std::vector<uint8_t> crossover(const std::vector<uint8_t> &A,
                               const std::vector<uint8_t> &B, Rng &Rand) {
  std::vector<uint8_t> Out(A.begin(),
                           A.begin() + int64_t(Rand.below(A.size() + 1)));
  Out.insert(Out.end(), B.begin() + int64_t(Rand.below(B.size() + 1)),
             B.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Per-mutant trichotomy
//===----------------------------------------------------------------------===//

/// Which arm of the ingestion trichotomy a mutant landed in.
enum class MutantOutcome { CleanError, Degraded, Full };

/// Drives one mutant through the full stack and asserts the trichotomy.
MutantOutcome runMutant(const std::vector<uint8_t> &Bytes, Verdicts &V,
                        const std::string &Context,
                        const FuzzConfig &Config) {
  unsigned Jobs = Config.Jobs;
  // Outcome 1: clean error.  Structured code, non-empty message, done.
  Expected<Image> Loaded = loadImage(Bytes);
  if (!Loaded) {
    FUZZ_CHECK(Loaded.error().Code != ErrCode::None, V, Context);
    FUZZ_CHECK(!Loaded.error().Message.empty(), V, Context);
    return MutantOutcome::CleanError;
  }
  Image Img = *Loaded;

  ValidationReport Report = validateImage(Img);
  AnalysisOptions AOpts;
  AOpts.Jobs = Jobs;
  AnalysisResult Analysis;
  if (Config.Budget.any()) {
    // Under a resource budget the trichotomy gains no fourth arm: a
    // budget the degradation ladder cannot satisfy is a clean error,
    // anything else lands in the usual three with possibly more
    // quarantined routines.
    Expected<GovernedAnalysis> Governed = analyzeImageGoverned(
        Img, CallingConv(), AOpts, Config.Budget.Budget, Config.Cancel);
    if (!Governed) {
      FUZZ_CHECK(Governed.error().Code != ErrCode::None, V, Context);
      FUZZ_CHECK(!Governed.error().Message.empty(), V, Context);
      return MutantOutcome::CleanError;
    }
    Analysis = std::move(Governed->Result);
  } else {
    Analysis = analyzeImage(Img, CallingConv(), AOpts);
  }
  const Program &Prog = Analysis.Prog;
  RegSet AllRegs = RegSet::allBelow(NumIntRegs);

  if (Report.clean()) {
    // Outcome 3: full result.  verify() agrees, nothing is quarantined
    // except what the budget (if any) degraded.
    FUZZ_CHECK(!Img.verify().has_value(), V, Context);
    FUZZ_CHECK(Prog.numQuarantined() == Prog.numBudgetDegraded(), V,
               Context);
  } else {
    // Outcome 2: quarantined but sound.  verify() reports the defect,
    // every routine the validator implicates is quarantined and carries
    // a worst-case summary, and SL011 surfaces the degradation.
    FUZZ_CHECK(Img.verify().has_value(), V, Context);
    for (const ValidationFinding &F : Report.Findings) {
      if (!F.Quarantines)
        continue;
      bool Found = false;
      for (uint32_t R = 0; R < Prog.Routines.size(); ++R) {
        if (Prog.Routines[R].Name != F.RoutineName)
          continue;
        Found = true;
        FUZZ_CHECK(Prog.Routines[R].Quarantined, V,
                   Context + " " + F.RoutineName + " not quarantined");
        for (uint32_t Entry = 0;
             Entry < Prog.Routines[R].EntryAddresses.size(); ++Entry) {
          FUZZ_CHECK(Analysis.entrySets(R, Entry).MayUse == AllRegs, V,
                     Context + " quarantined may-use not worst-case");
          FUZZ_CHECK(Analysis.entrySets(R, Entry).MustDef.empty(), V,
                     Context + " quarantined must-def not empty");
        }
        break;
      }
      FUZZ_CHECK(Found, V,
                 Context + " quarantined routine '" + F.RoutineName +
                     "' missing from program");
    }
  }

  // Lint must classify without crashing; a degraded image must say so.
  LintResult Lint = lintAnalysis(Img, Analysis, LintOptions());
  if (!Report.ok()) {
    unsigned Quarantines = 0;
    for (const Diagnostic &D : Lint.Diags)
      Quarantines += D.Rule == RuleId::QuarantinedRoutine;
    FUZZ_CHECK(Quarantines >= 1, V, Context + " no SL011 for degraded image");
  }

  // Slice-subsystem soundness on every surviving mutant: slot facts must
  // respect quarantine (a quarantined routine is opaque and triggers the
  // global escape collapse) and slices over the dependence graph must be
  // well-formed — sorted, in range, and anchored at their seed.
  SlotFlowResult Flow = solveSlotFlow(Prog, Jobs);
  if (Prog.numQuarantined() != 0)
    FUZZ_CHECK(Flow.GlobalEscape, V,
               Context + " quarantine without slot global escape");
  for (uint32_t R = 0; R < Prog.Routines.size(); ++R)
    if (Prog.Routines[R].Quarantined)
      FUZZ_CHECK(Flow.Routines[R].Opaque, V,
                 Context + " quarantined routine '" + Prog.Routines[R].Name +
                     "' not opaque in slot facts");
  if (!Prog.Insts.empty()) {
    DependenceGraph Graph = buildDepGraph(Prog, Analysis.Summaries, Flow);
    uint64_t SeedAddress = Prog.Insts.size() / 2;
    for (bool BackwardDir : {true, false}) {
      std::vector<uint64_t> Slice = BackwardDir
                                        ? backwardSlice(Graph, SeedAddress)
                                        : forwardSlice(Graph, SeedAddress);
      bool SeedPresent = false, InRange = true, Sorted = true;
      for (size_t S = 0; S < Slice.size(); ++S) {
        SeedPresent |= Slice[S] == SeedAddress;
        InRange &= Slice[S] < Prog.Insts.size();
        if (S != 0)
          Sorted &= Slice[S - 1] < Slice[S];
      }
      FUZZ_CHECK(SeedPresent, V, Context + " slice lost its seed");
      FUZZ_CHECK(InRange, V, Context + " slice address out of range");
      FUZZ_CHECK(Sorted, V, Context + " slice not sorted ascending");
    }
  }

  // The optimizer must refuse quarantined bytes and produce output that
  // still validates (no new strict findings) and round-trips; a round
  // that fails either check must roll back — and with sound passes none
  // should.
  std::vector<std::pair<uint64_t, uint64_t>> Frozen;
  for (const Routine &R : Prog.Routines)
    if (R.Quarantined)
      Frozen.push_back({R.Begin, R.End});
  Image Before = Img;

  PipelineOptions OptOpts;
  OptOpts.MaxRounds = 2;
  OptOpts.Jobs = Jobs;
  OptOpts.Budget = Config.Budget.Budget;
  OptOpts.Cancel = Config.Cancel;
  PipelineStats Stats = optimizeImage(Img, CallingConv(), OptOpts);
  FUZZ_CHECK(Stats.RoundsRolledBack == 0, V,
             Context + " optimizer round rolled back (pass bug?)");
  for (const auto &[Begin, End] : Frozen)
    for (uint64_t Address = Begin; Address < End; ++Address)
      FUZZ_CHECK(Img.Code[Address] == Before.Code[Address], V,
                 Context + " optimizer touched quarantined bytes");
  Expected<Image> Reloaded = loadImage(writeImage(Img));
  FUZZ_CHECK(bool(Reloaded), V, Context + " optimized image lost");
  if (Reloaded)
    FUZZ_CHECK(*Reloaded == Img, V, Context + " round-trip mismatch");
  return Report.clean() ? MutantOutcome::Full : MutantOutcome::Degraded;
}

std::vector<Image> buildCorpus() {
  std::vector<Image> Corpus;
  for (uint64_t Seed : {3u, 11u, 29u}) {
    ExecProfile P;
    P.Routines = 6;
    P.Seed = Seed;
    Corpus.push_back(generateExecProgram(P));
  }
  {
    ExecProfile P; // one with more indirection
    P.Routines = 10;
    P.IndirectCallProb = 0.25;
    P.Seed = 5;
    Corpus.push_back(generateExecProgram(P));
  }
  for (const BenchmarkProfile &Profile : paperProfiles())
    Corpus.push_back(generateCfgProgram(scaledProfile(Profile, 0.03)));
  return Corpus;
}

//===----------------------------------------------------------------------===//
// Serve arm: fuzz the resident server's line protocol
//===----------------------------------------------------------------------===//

/// Field-by-field equality mirroring the differential oracle in
/// tests/serve_test.cpp, as predicates so FUZZ_CHECK can name the
/// divergence.
bool summariesEqual(const InterprocSummaries &A, const InterprocSummaries &B) {
  if (A.Routines.size() != B.Routines.size())
    return false;
  for (size_t R = 0; R < A.Routines.size(); ++R) {
    const RoutineResults &G = A.Routines[R];
    const RoutineResults &W = B.Routines[R];
    if (G.EntrySummaries.size() != W.EntrySummaries.size() ||
        G.LiveAtEntry.size() != W.LiveAtEntry.size() ||
        G.LiveAtExit.size() != W.LiveAtExit.size())
      return false;
    for (size_t E = 0; E < G.EntrySummaries.size(); ++E)
      if (!(G.EntrySummaries[E].Used == W.EntrySummaries[E].Used) ||
          !(G.EntrySummaries[E].Defined == W.EntrySummaries[E].Defined) ||
          !(G.EntrySummaries[E].Killed == W.EntrySummaries[E].Killed))
        return false;
    for (size_t E = 0; E < G.LiveAtEntry.size(); ++E)
      if (!(G.LiveAtEntry[E] == W.LiveAtEntry[E]))
        return false;
    for (size_t E = 0; E < G.LiveAtExit.size(); ++E)
      if (!(G.LiveAtExit[E] == W.LiveAtExit[E]))
        return false;
  }
  return true;
}

bool slotsEqual(const SlotFlowResult &A, const SlotFlowResult &B) {
  if (A.GlobalEscape != B.GlobalEscape ||
      A.OpaqueRoutines != B.OpaqueRoutines ||
      A.Routines.size() != B.Routines.size())
    return false;
  for (size_t R = 0; R < A.Routines.size(); ++R) {
    const RoutineSlotFacts &G = A.Routines[R];
    const RoutineSlotFacts &W = B.Routines[R];
    if (G.Opaque != W.Opaque || !(G.MayUse == W.MayUse) ||
        !(G.MayDef == W.MayDef) || !(G.LiveAtExit == W.LiveAtExit) ||
        !(G.DeltaIn == W.DeltaIn) || !(G.DeltaOut == W.DeltaOut) ||
        !(G.BlockLiveIn == W.BlockLiveIn) ||
        !(G.BlockLiveOut == W.BlockLiveOut))
      return false;
  }
  return true;
}

/// A patchable routine of the resident program: named and wide enough
/// for a within-routine word shuffle.
const Routine *servePickRoutine(const Program &Prog, Rng &Rand) {
  std::vector<const Routine *> Candidates;
  for (const Routine &Rt : Prog.Routines)
    if (!Rt.Name.empty() && Rt.End - Rt.Begin >= 4)
      Candidates.push_back(&Rt);
  if (Candidates.empty())
    return nullptr;
  return Candidates[Rand.below(Candidates.size())];
}

/// Applies a 1-3 word within-routine shuffle to \p Img and returns the
/// patch-routine line performing it.  Words travel as decimal strings:
/// the opcode lives in the top byte and JSON numbers are doubles.
std::string servePatchLine(Image &Img, const Routine &Rt, Rng &Rand) {
  uint64_t Span = Rt.End - Rt.Begin;
  unsigned Edits = 1 + unsigned(Rand.below(3));
  for (unsigned E = 0; E < Edits; ++E) {
    uint64_t Dst = Rt.Begin + Rand.below(Span);
    uint64_t Src = Rt.Begin + Rand.below(Span);
    Img.Code[Dst] = Img.Code[Src];
  }
  std::string Line =
      "patch-routine {\"routine\":\"" + Rt.Name + "\",\"code\":[";
  for (uint64_t A = Rt.Begin; A < Rt.End; ++A) {
    if (A != Rt.Begin)
      Line += ",";
    Line += "\"" + std::to_string(Img.Code[A]) + "\"";
  }
  Line += "]}";
  return Line;
}

/// Malformed protocol input: unknown commands, type-confused arguments,
/// truncated JSON, and printable byte noise.  Never contains '\n' (the
/// stream layer owns line framing).
std::string garbageLine(Rng &Rand) {
  static const char *const Fixed[] = {
      "bogus {}",
      "analyze {\"routine\":42}",
      "slice {\"addr\":\"nope\"}",
      "slice {}",
      "explain {\"fact\":\"live\"}",
      "explain {\"fact\":\"confused\",\"loc\":\"r1@entry:main\"}",
      "explain {\"fact\":\"live\",\"loc\":\"r1@lunch:main\"}",
      "patch-routine {\"routine\":\"no-such-routine\",\"code\":[1,2]}",
      "patch-routine {\"routine\":17}",
      "patch-routine {\"routine\":\"main\",\"code\":\"not-an-array\"}",
      "load {\"path\":\"/nonexistent/image.spkx\"}",
      "load {}",
      "lint {\"min-severity\":\"fatal\"}",
      "{\"cmd\":\"analyze\"}",
      "patch-routine",
  };
  switch (Rand.below(3)) {
  case 0:
    return Fixed[Rand.below(std::size(Fixed))];
  case 1: { // truncated JSON
    const std::string Whole = "slice {\"addr\":123,\"dir\":\"backward\"}";
    return Whole.substr(0, 1 + Rand.below(Whole.size()));
  }
  default: { // printable byte noise
    std::string Line;
    size_t N = 1 + Rand.below(40);
    for (size_t I = 0; I < N; ++I)
      Line.push_back(char(0x20 + Rand.below(0x5f)));
    return Line;
  }
  }
}

/// A well-formed read-only query over the resident program (the address
/// or node may still be semantically bogus — that yields an error reply,
/// which is part of the contract under test).
std::string serveQueryLine(const Program &Prog, uint64_t CodeWords,
                           Rng &Rand) {
  switch (Rand.below(6)) {
  case 0:
    return "analyze";
  case 1: {
    if (Prog.Routines.empty())
      return "analyze";
    const Routine &Rt = Prog.Routines[Rand.below(Prog.Routines.size())];
    return "analyze {\"routine\":\"" + Rt.Name + "\"}";
  }
  case 2:
    return Rand.chance(0.5) ? "lint"
                            : "lint {\"min-severity\":\"warning\"}";
  case 3: {
    uint64_t Addr = Rand.below(CodeWords ? CodeWords : 1);
    return "slice {\"addr\":" + std::to_string(Addr) + ",\"dir\":\"" +
           (Rand.chance(0.5) ? "backward" : "forward") + "\"}";
  }
  case 4: {
    uint64_t Addr = Rand.below(CodeWords ? CodeWords : 1);
    return "explain {\"fact\":\"dead\",\"addr\":" + std::to_string(Addr) +
           "}";
  }
  default: {
    static const char *const Facts[] = {"live", "may-use", "may-def"};
    const Routine *Rt = servePickRoutine(Prog, Rand);
    if (!Rt)
      return "stats";
    return std::string("explain {\"fact\":\"") + Facts[Rand.below(3)] +
           "\",\"loc\":\"r" + std::to_string(Rand.below(NumIntRegs)) +
           "@" + (Rand.chance(0.5) ? "entry" : "exit") + ":" + Rt->Name +
           "\"}";
  }
  }
}

/// One fuzzed serve session: a deterministic random command stream
/// (queries, patches, loads, garbage, random batch boundaries) against a
/// resident server.  Every reply must be one well-formed JSON object
/// carrying an "ok" field; afterwards two oracles run — a twin server
/// replaying the identical stream line-by-line must answer byte-for-byte
/// the same, and the resident state must equal a fresh full solve of the
/// final patched image.  Appends the stream to \p StreamOut so a failing
/// session can be written as an artifact.
void runServeSession(const std::vector<Image> &Corpus,
                     const std::vector<std::string> &LoadPaths,
                     Verdicts &V, Rng &Rand, const std::string &Context,
                     std::vector<std::string> &StreamOut) {
  ServerOptions SO;
  SO.Jobs = 1 + unsigned(Rand.below(4));
  Server S(SO);
  size_t Base = Rand.below(Corpus.size());
  std::string Err;
  if (!S.loadImage(Corpus[Base], &Err)) {
    V.fail(Context + " base image rejected: " + Err);
    return;
  }
  Image Shadow = Corpus[Base];

  std::vector<std::string> &Lines = StreamOut; // whole stream, for twin
  std::vector<std::string> Replies;            // positionally parallel
  std::vector<std::string> Pending;            // current batch

  auto Flush = [&] {
    if (Pending.empty())
      return;
    std::vector<std::string> Batch = S.handleBatch(Pending);
    if (std::getenv("SPIKE_SERVE_DEBUG"))
      for (size_t I = 0; I < Batch.size(); ++I)
        std::fprintf(stderr, ">> %s\n<< %s\n", Pending[I].c_str(),
                     Batch[I].c_str());
    FUZZ_CHECK(Batch.size() == Pending.size(), V, Context + " reply count");
    for (const std::string &Reply : Batch) {
      FUZZ_CHECK(telemetry::parseJson(Reply).has_value(), V,
                 Context + " reply not JSON: " + Reply);
      FUZZ_CHECK(Reply.find("\"ok\":") != std::string::npos, V,
                 Context + " reply without ok field: " + Reply);
    }
    Replies.insert(Replies.end(), Batch.begin(), Batch.end());
    Pending.clear();
  };

  unsigned NumCmds = 6 + unsigned(Rand.below(18));
  for (unsigned C = 0; C < NumCmds; ++C) {
    std::string Line;
    switch (Rand.below(10)) {
    case 0: { // load crossover: jump to another corpus image
      Flush(); // barrier lines are built against the resident program
      size_t Next = Rand.below(LoadPaths.size());
      Line = "load {\"path\":" + telemetry::jsonQuote(LoadPaths[Next]) + "}";
      Shadow = Corpus[Next];
      break;
    }
    case 1:
    case 2: { // same-length routine patch
      Flush();
      const Routine *Rt = servePickRoutine(S.analysis().Prog, Rand);
      Line = Rt ? servePatchLine(Shadow, *Rt, Rand) : "stats";
      break;
    }
    case 3:
    case 4:
    case 5:
      Line = garbageLine(Rand);
      break;
    default:
      Line = serveQueryLine(S.analysis().Prog, Shadow.Code.size(), Rand);
      break;
    }
    Lines.push_back(Line);
    Pending.push_back(Line);
    if (Rand.chance(0.35))
      Flush();
  }
  Lines.push_back("stats");
  Pending.push_back("stats");
  Flush();

  // The server survived the stream: the trailing stats answered ok.
  FUZZ_CHECK(Replies.back().find("\"ok\":true") != std::string::npos, V,
             Context + " trailing stats failed: " + Replies.back());

  // Oracle 1: a fresh server replaying the identical stream one line at
  // a time answers byte-for-byte the same — batching, job count (the
  // twin shares SO.Jobs, but replies must not depend on it anyway), and
  // interleaving are unobservable.
  Server Twin(SO);
  if (!Twin.loadImage(Corpus[Base], &Err)) {
    V.fail(Context + " twin rejected the base image: " + Err);
    return;
  }
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string Reply = Twin.handleLine(Lines[I]);
    if (Reply != Replies[I]) {
      V.fail(Context + " replay diverged at line " + std::to_string(I) +
             " '" + Lines[I] + "': batch='" + Replies[I] + "' serial='" +
             Reply + "'");
      return;
    }
  }

  // Oracle 2: the resident state equals a fresh full solve of the final
  // patched image (the incremental engine left no stale facts behind).
  FUZZ_CHECK(S.image() == Shadow, V,
             Context + " resident image diverged from the patch stream");
  AnalysisOptions AO;
  AO.Jobs = 1;
  AO.RecordProvenance = true;
  AnalysisResult Fresh = analyzeImage(Shadow, CallingConv(), AO);
  FUZZ_CHECK(summariesEqual(S.analysis().Summaries, Fresh.Summaries), V,
             Context + " resident summaries diverge from fresh solve");
  FUZZ_CHECK(S.analysis().Provenance == Fresh.Provenance, V,
             Context + " resident provenance diverges from fresh solve");
  SlotFlowResult FreshSlots = solveSlotFlow(Fresh.Prog, 1);
  FUZZ_CHECK(slotsEqual(S.slotFlow(), FreshSlots), V,
             Context + " resident slot facts diverge from fresh solve");
}

int runTool(int Argc, char **Argv) {
  FuzzConfig Config;
  Config.Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc)
      Config.Seed = std::strtoull(Argv[++I], nullptr, 0);
    else if (std::strcmp(Argv[I], "--iterations") == 0 && I + 1 < Argc)
      Config.Iterations = std::strtoull(Argv[++I], nullptr, 0);
    else if (std::strcmp(Argv[I], "--serve-iterations") == 0 && I + 1 < Argc)
      Config.ServeIterations = std::strtoull(Argv[++I], nullptr, 0);
    else if (std::strcmp(Argv[I], "--artifact-dir") == 0 && I + 1 < Argc)
      Config.ArtifactDir = Argv[++I];
    else if (std::strcmp(Argv[I], "--skip-oracle") == 0)
      Config.SkipOracle = true;
    else if (std::strcmp(Argv[I], "--verbose") == 0)
      Config.Verbose = true;
    else if (toolopts::parseJobs(Argc, Argv, I, Config.Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, Config.Budget))
      ;
    else
      return usage(Argv[0]);
  }

  toolbudget::Session Faults(Config.Budget);
  Config.Cancel = Faults.token();
  tooltel::Emitter Telemetry("spike-fuzz", TelemetryOpts);

  Verdicts V;
  std::vector<Image> Corpus = buildCorpus();
  std::vector<std::vector<uint8_t>> Serialized;
  for (const Image &Img : Corpus)
    Serialized.push_back(writeImage(Img));

  if (!Config.SkipOracle) {
    runOracle(Corpus, V, Config.Verbose, Config.Jobs);
    if (V.Failures != 0) {
      std::fprintf(stderr,
                   "spike-fuzz: soundness oracle FAILED (%llu violations)\n",
                   (unsigned long long)V.Failures);
      return 1;
    }
    std::printf("spike-fuzz: soundness oracle passed on %zu profiles\n",
                Corpus.size());
  }

  Rng Rand(Config.Seed);
  Stopwatch LoopTimer;
  LoopTimer.start();
  telemetry::Span LoopSpan("fuzz.mutation_loop");
  for (uint64_t Iter = 0; Iter < Config.Iterations; ++Iter) {
    const std::string Context =
        "seed=" + std::to_string(Config.Seed) +
        " iter=" + std::to_string(Iter);
    size_t Pick = Rand.below(Serialized.size());
    std::vector<uint8_t> Mutant;
    switch (Rand.below(4)) {
    case 0:
      Mutant = mutateStructured(Corpus[Pick], Rand);
      break;
    case 1:
      Mutant = crossover(Serialized[Pick],
                         Serialized[Rand.below(Serialized.size())], Rand);
      break;
    default:
      Mutant = mutateBytes(Serialized[Pick], Rand);
      break;
    }
    // Half the time, stack byte-level noise on top.
    if (Rand.chance(0.25))
      Mutant = mutateBytes(std::move(Mutant), Rand);

    uint64_t FailuresBefore = V.Failures;
    MutantOutcome Outcome = runMutant(Mutant, V, Context, Config);
    telemetry::count("fuzz.mutants");
    telemetry::count(Outcome == MutantOutcome::CleanError
                         ? "fuzz.outcome.error"
                         : Outcome == MutantOutcome::Degraded
                               ? "fuzz.outcome.degraded"
                               : "fuzz.outcome.full");
    if (V.Failures != FailuresBefore && !Config.ArtifactDir.empty()) {
      std::string Path = Config.ArtifactDir + "/crash-" +
                         std::to_string(Config.Seed) + "-" +
                         std::to_string(Iter) + ".spkx";
      std::ofstream Out(Path, std::ios::binary);
      Out.write(reinterpret_cast<const char *>(Mutant.data()),
                std::streamsize(Mutant.size()));
      std::fprintf(stderr, "spike-fuzz: mutant written to %s\n",
                   Path.c_str());
    }
    if (Config.Verbose && (Iter + 1) % 1000 == 0)
      std::fprintf(stderr, "spike-fuzz: %llu iterations\n",
                   (unsigned long long)(Iter + 1));
  }

  double LoopSeconds = LoopTimer.seconds();

  if (Config.ServeIterations != 0) {
    // The serve arm needs the corpus on disk so `load` crossovers walk
    // the real file path.  Files live next to the artifacts if a dir was
    // given, else in the system temp dir, and are removed afterwards.
    std::string Dir = Config.ArtifactDir;
    if (Dir.empty()) {
      const char *Tmp = std::getenv("TMPDIR");
      Dir = Tmp && *Tmp ? Tmp : "/tmp";
    }
    std::vector<std::string> LoadPaths;
    for (size_t I = 0; I < Serialized.size(); ++I) {
      std::string Path = Dir + "/spike-fuzz-serve-" +
                         std::to_string(Config.Seed) + "-" +
                         std::to_string(I) + ".spkx";
      std::ofstream Out(Path, std::ios::binary);
      Out.write(reinterpret_cast<const char *>(Serialized[I].data()),
                std::streamsize(Serialized[I].size()));
      LoadPaths.push_back(Path);
    }

    telemetry::Span ServeSpan("fuzz.serve_loop");
    uint64_t Commands = 0;
    for (uint64_t Iter = 0; Iter < Config.ServeIterations; ++Iter) {
      const std::string Context =
          "serve seed=" + std::to_string(Config.Seed) +
          " iter=" + std::to_string(Iter);
      uint64_t FailuresBefore = V.Failures;
      std::vector<std::string> Stream;
      runServeSession(Corpus, LoadPaths, V, Rand, Context, Stream);
      Commands += Stream.size();
      telemetry::count("fuzz.serve.sessions");
      if (V.Failures != FailuresBefore && !Config.ArtifactDir.empty()) {
        std::string Path = Config.ArtifactDir + "/serve-" +
                           std::to_string(Config.Seed) + "-" +
                           std::to_string(Iter) + ".txt";
        std::ofstream Out(Path, std::ios::binary);
        for (const std::string &Line : Stream)
          Out << Line << "\n";
        std::fprintf(stderr, "spike-fuzz: command stream written to %s\n",
                     Path.c_str());
      }
    }
    telemetry::count("fuzz.serve.commands", Commands);
    for (const std::string &Path : LoadPaths)
      std::remove(Path.c_str());

    if (V.Failures == 0)
      std::printf("spike-fuzz: %llu serve sessions (%llu commands) "
                  "replayed clean against the fresh-solve oracle\n",
                  (unsigned long long)Config.ServeIterations,
                  (unsigned long long)Commands);
  }

  telemetry::count("fuzz.failures", V.Failures);
  if (LoopSeconds > 0)
    telemetry::gaugeSet("fuzz.mutants_per_second",
                        uint64_t(double(Config.Iterations) / LoopSeconds));

  if (V.Failures != 0) {
    std::fprintf(stderr, "spike-fuzz: %llu violations; first: %s\n",
                 (unsigned long long)V.Failures, V.FirstReport.c_str());
    return 1;
  }
  std::printf("spike-fuzz: %llu mutants, all within the trichotomy "
              "(clean error | quarantined-but-sound | full result)\n",
              (unsigned long long)Config.Iterations);
  if (LoopSeconds > 0 && Config.Iterations != 0)
    std::printf("spike-fuzz: %.0f mutants/s over %.2f s\n",
                double(Config.Iterations) / LoopSeconds, LoopSeconds);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-fuzz");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
