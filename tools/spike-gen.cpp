//===- tools/spike-gen.cpp - workload generator driver ----------------------===//
//
// Generates synthetic .spkx executables:
//
//   spike-gen --benchmark gcc [--scale 0.5] -o out.spkx      (analysis-shaped)
//   spike-gen --exec --routines 20 --seed 7 -o out.spkx      (runnable)
//   spike-gen --list
//
//===----------------------------------------------------------------------===//

#include "synth/CfgGenerator.h"
#include "synth/ExecGenerator.h"
#include "synth/Profiles.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spike;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --benchmark <name> [--scale f] -o <out.spkx>\n"
               "       %s --exec [--routines N] [--seed S] -o <out.spkx>\n"
               "       %s --list\n"
               "  shared flags: %s %s (--jobs is accepted for CLI "
               "uniformity; generation is serial)\n",
               Prog, Prog, Prog, toolopts::jobsUsage(), tooltel::usage());
}

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-gen");
  std::string BenchmarkName, OutputPath;
  bool Exec = false, List = false;
  double Scale = 1.0;
  unsigned Routines = 16;
  uint64_t Seed = 42;
  unsigned Jobs = toolopts::defaultJobs(); // accepted for CLI uniformity
  tooltel::Options TelemetryOpts;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--benchmark") == 0 && I + 1 < Argc)
      BenchmarkName = Argv[++I];
    else if (std::strcmp(Argv[I], "--scale") == 0 && I + 1 < Argc)
      Scale = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--exec") == 0)
      Exec = true;
    else if (std::strcmp(Argv[I], "--list") == 0)
      List = true;
    else if (std::strcmp(Argv[I], "--routines") == 0 && I + 1 < Argc)
      Routines = unsigned(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc)
      OutputPath = Argv[++I];
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else {
      usage(Argv[0]);
      return 2;
    }
  }

  if (List) {
    std::printf("%-10s %-16s %9s %8s %10s\n", "name", "suite", "routines",
                "calls/rt", "branches/rt");
    for (const BenchmarkProfile &P : paperProfiles())
      std::printf("%-10s %-16s %9u %8.2f %10.2f\n", P.Name.c_str(),
                  P.Suite.c_str(), P.Routines, P.CallsPerRoutine,
                  P.BranchesPerRoutine);
    return 0;
  }
  if (OutputPath.empty() || (BenchmarkName.empty() && !Exec)) {
    usage(Argv[0]);
    return 2;
  }

  tooltel::Emitter Telemetry("spike-gen", TelemetryOpts);

  Image Img;
  if (Exec) {
    ExecProfile P;
    P.Routines = Routines;
    P.Seed = Seed;
    Img = generateExecProgram(P);
  } else {
    const BenchmarkProfile *Base = findProfile(BenchmarkName);
    if (!Base) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (--list)\n",
                   BenchmarkName.c_str());
      return 1;
    }
    BenchmarkProfile P =
        Scale == 1.0 ? *Base : scaledProfile(*Base, Scale);
    Img = generateCfgProgram(P);
  }

  if (!writeImageFile(Img, OutputPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutputPath.c_str());
    return 1;
  }
  std::printf("%s: %zu instructions, %zu symbols, %zu jump tables\n",
              OutputPath.c_str(), Img.Code.size(), Img.Symbols.size(),
              Img.JumpTables.size());
  return 0;
}
