//===- tools/spike-analyze.cpp - interprocedural analysis driver -----------===//
//
// Runs the Spike-style interprocedural dataflow analysis on an image and
// prints the per-routine summaries and/or cost statistics.
//
//   spike-analyze app.spkx [--summaries] [--stats] [--routine <name>]
//
// With no flags, prints stats.  --summaries prints every routine's
// call-used/call-defined/call-killed and live-at-entry/exit sets.
//
//===----------------------------------------------------------------------===//

#include "cfg/CallGraph.h"
#include "lint/Linter.h"
#include "psg/Analyzer.h"
#include "psg/DotExport.h"
#include "ToolBudget.h"
#include "ToolOptions.h"
#include "ToolTelemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace spike;

namespace {

void printRoutineSummaries(const AnalysisResult &Result,
                           uint32_t RoutineIndex) {
  const Routine &R = Result.Prog.Routines[RoutineIndex];
  const RoutineResults &RR = Result.Summaries.Routines[RoutineIndex];
  std::printf("%s: [%llu, %llu)\n", R.Name.c_str(),
              (unsigned long long)R.Begin, (unsigned long long)R.End);
  for (size_t E = 0; E < RR.EntrySummaries.size(); ++E) {
    const CallSummary &S = RR.EntrySummaries[E];
    std::printf("  entrance %zu @%llu:\n", E,
                (unsigned long long)R.EntryAddresses[E]);
    std::printf("    call-used:     %s\n", S.Used.str().c_str());
    std::printf("    call-defined:  %s\n", S.Defined.str().c_str());
    std::printf("    call-killed:   %s\n", S.Killed.str().c_str());
    std::printf("    live-at-entry: %s\n",
                RR.LiveAtEntry[E].str().c_str());
  }
  for (size_t X = 0; X < RR.LiveAtExit.size(); ++X)
    std::printf("  exit %zu @block %u: live-at-exit %s\n", X,
                R.ExitBlocks[X], RR.LiveAtExit[X].str().c_str());
}

int runTool(int Argc, char **Argv) {
  std::string Path, RoutineName, DotWhat;
  bool Summaries = false, Stats = false, Verify = false;
  unsigned Jobs = toolopts::defaultJobs();
  tooltel::Options TelemetryOpts;
  toolbudget::Options BudgetOpts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--summaries") == 0)
      Summaries = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(Argv[I], "--verify") == 0)
      Verify = true;
    else if (std::strcmp(Argv[I], "--routine") == 0 && I + 1 < Argc)
      RoutineName = Argv[++I];
    else if (std::strcmp(Argv[I], "--dot") == 0 && I + 1 < Argc)
      DotWhat = Argv[++I]; // "psg", "cfg", or "callgraph"
    else if (toolopts::parseJobs(Argc, Argv, I, Jobs))
      ;
    else if (tooltel::parseFlag(Argc, Argv, I, TelemetryOpts))
      ;
    else if (toolbudget::parseFlag(Argc, Argv, I, BudgetOpts))
      ;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <image.spkx> [--summaries] [--stats] "
                   "[--verify] [--routine <name>] %s %s %s\n",
                   Argv[0], toolopts::jobsUsage(), toolbudget::usage(),
                   tooltel::usage());
      return 2;
    } else
      Path = Argv[I];
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <image.spkx> [--summaries] [--stats] "
                 "[--verify] [--routine <name>] %s %s %s\n",
                 Argv[0], toolopts::jobsUsage(), toolbudget::usage(),
                 tooltel::usage());
    return 2;
  }
  if (!Summaries && !Verify && RoutineName.empty())
    Stats = true;

  toolbudget::Session Faults(BudgetOpts);
  tooltel::Emitter Telemetry("spike-analyze", TelemetryOpts);

  std::string Error;
  std::optional<Image> Img = readImageFile(Path, &Error);
  if (!Img) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  AnalysisOptions AOpts;
  AOpts.Jobs = Jobs;
  AnalysisResult Result;
  if (BudgetOpts.any()) {
    Expected<GovernedAnalysis> Governed = analyzeImageGoverned(
        *Img, {}, AOpts, BudgetOpts.Budget, Faults.token());
    if (!Governed)
      return toolbudget::exitError(Governed.error());
    Result = std::move(Governed->Result);
    for (const std::string &Name : Governed->DegradedRoutines)
      std::fprintf(stderr,
                   "note: %s degraded to an unknowable summary "
                   "(budget: %s, attempt %u)\n",
                   Name.c_str(), budgetVerdictName(Governed->FirstBlow),
                   Governed->Attempts);
  } else {
    Result = analyzeImage(*Img, {}, AOpts);
  }

  if (Verify) {
    // Cross-check the PSG summaries against the CFG-level two-phase
    // reference analysis; any disagreement is a bug in one of the two.
    std::vector<Diagnostic> Mismatches = crossCheckSummaries(Result);
    for (const Diagnostic &D : Mismatches)
      std::fprintf(stderr, "%s\n", D.str().c_str());
    std::printf("verify: %zu mismatch(es) between PSG and CFG two-phase "
                "reference\n",
                Mismatches.size());
    if (!Mismatches.empty())
      return 1;
  }

  if (!DotWhat.empty()) {
    if (DotWhat == "callgraph") {
      CallGraph Graph = buildCallGraph(Result.Prog);
      std::fputs(callGraphToDot(Result.Prog, Graph).c_str(), stdout);
      return 0;
    }
    for (uint32_t R = 0; R < Result.Prog.Routines.size(); ++R) {
      if (Result.Prog.Routines[R].Name != RoutineName)
        continue;
      std::fputs(DotWhat == "cfg"
                     ? cfgToDot(Result.Prog, R).c_str()
                     : psgToDot(Result.Prog, Result.Psg, R).c_str(),
                 stdout);
      return 0;
    }
    std::fprintf(stderr,
                 "error: --dot %s needs --routine <name> (or use "
                 "--dot callgraph)\n",
                 DotWhat.c_str());
    return 1;
  }

  if (!RoutineName.empty()) {
    for (uint32_t R = 0; R < Result.Prog.Routines.size(); ++R)
      if (Result.Prog.Routines[R].Name == RoutineName) {
        printRoutineSummaries(Result, R);
        return 0;
      }
    std::fprintf(stderr, "error: no routine named '%s'\n",
                 RoutineName.c_str());
    return 1;
  }

  if (Summaries)
    for (uint32_t R = 0; R < Result.Prog.Routines.size(); ++R)
      printRoutineSummaries(Result, R);

  if (Stats) {
    std::printf("routines:      %zu\n", Result.Prog.Routines.size());
    std::printf("basic blocks:  %llu\n",
                (unsigned long long)Result.Prog.numBlocks());
    std::printf("instructions:  %zu\n", Result.Prog.Insts.size());
    std::printf("PSG nodes:     %zu (%llu branch nodes)\n",
                Result.Psg.Nodes.size(),
                (unsigned long long)Result.Psg.NumBranchNodes);
    std::printf("PSG edges:     %zu (%llu flow-summary)\n",
                Result.Psg.Edges.size(),
                (unsigned long long)Result.Psg.NumFlowSummaryEdges);
    std::printf("total time:    %.4f s\n", Result.Stages.totalSeconds());
    for (unsigned S = 0; S < NumAnalysisStages; ++S)
      std::printf("  %-15s %.4f s\n", stageName(AnalysisStage(S)),
                  Result.Stages.seconds(AnalysisStage(S)));
    std::printf("memory:        %.2f MB\n", Result.Memory.peakMBytes());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-analyze");
  return toolbudget::guardedMain([&] { return runTool(Argc, Argv); });
}
