//===- tools/spike-top.cpp - live serve observability top ----------------===//
//
// Renders ranked tables over a running spike-serve instance's
// observability surfaces: top commands by p99 latency, top commands by
// queue wait, top routines by attributed solve time, and the service
// health rates (error / protocol-error / degraded-reply / depgraph-hit).
//
//   spike-top --socket=/tmp/s                poll `metrics` live
//   spike-top --socket=/tmp/s --once         one scrape, one table, exit
//   spike-serve app.spkx < session | spike-top --once
//                                            reply-stream mode: feeds on
//                                            the `metrics` reply line
//   spike-top --once < metrics.prom          raw exposition mode
//   spike-top --once < access.log            access-log mode: per-command
//                                            rollup + slowest requests
//   spike-top --validate < metrics.prom      strict exposition check (CI)
//   spike-top --validate < access.log        strict JSONL schema check (CI)
//
// Input auto-detection: a first line containing the access-log schema id
// is an access log; a line starting with '{' that parses as a protocol
// reply is a reply stream (the `metrics` reply's "body" carries the
// exposition); anything else must be Prometheus text exposition.
//
// --validate doubles as the CI checker: it strict-parses the exposition
// (or the access-log JSONL schema) and exits non-zero on the first
// malformed line, so workflows need no external Prometheus tooling.
//
// Exit codes: 0 ok, 1 input/scrape/validation failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include "telemetry/Histogram.h"
#include "telemetry/Json.h"
#include "telemetry/Prometheus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define SPIKE_TOP_POSIX 1
#endif

using namespace spike;
using telemetry::JsonValue;
using telemetry::PromSample;

namespace {

int usage(const char *Tool) {
  std::fprintf(stderr,
               "usage: %s [--socket=<path>] [--once] [--validate] "
               "[--top=<n>] [--interval=<ms>] [--prom-out=<file>]\n"
               "reads Prometheus exposition, spike-serve reply lines, or a "
               "serve access log\non stdin when no --socket is given\n",
               Tool);
  return 2;
}

/// `--<name>=<v>` / `--<name> <v>`.
bool parseStringFlag(int Argc, char **Argv, int &I, const char *Name,
                     std::string &Out) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Argv[I], Name, Len) != 0)
    return false;
  const char *Value = nullptr;
  if (Argv[I][Len] == '=')
    Value = Argv[I] + Len + 1;
  else if (Argv[I][Len] == '\0')
    Value = I + 1 < Argc ? Argv[++I] : "";
  else
    return false;
  if (*Value == '\0') {
    std::fprintf(stderr, "error: %s expects a value\n", Name);
    std::exit(2);
  }
  Out = Value;
  return true;
}

bool parseUnsignedFlag(int Argc, char **Argv, int &I, const char *Name,
                       uint64_t &Out) {
  std::string Value;
  if (!parseStringFlag(Argc, Argv, I, Name, Value))
    return false;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number\n", Name);
    std::exit(2);
  }
  Out = Parsed;
  return true;
}

std::string readAll(std::FILE *F) {
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    Out.append(Buf, N);
  return Out;
}

/// Human-ish but deterministic ns rendering: integral nanoseconds.
std::string ns(double V) { return std::to_string(uint64_t(V)); }

//===----------------------------------------------------------------------===//
// Exposition-derived tables
//===----------------------------------------------------------------------===//

/// One reassembled histogram: cumulative (le, count) pairs + sum/count.
struct HistView {
  std::vector<std::pair<double, double>> Cum; // ascending le
  double Sum = 0;
  double Count = 0;

  double mean() const { return Count > 0 ? Sum / Count : 0; }

  /// Nearest-rank percentile at bucket granularity (the le bound of the
  /// first bucket covering the rank), mirroring Histogram::percentile.
  double percentile(double P) const {
    if (Count <= 0)
      return 0;
    double Rank = std::floor(P / 100.0 * (Count - 1)) + 1;
    for (const auto &[Le, C] : Cum)
      if (C >= Rank)
        return Le;
    return Cum.empty() ? 0 : Cum.back().first;
  }
};

/// Groups `<base>_bucket` / `<base>_sum` / `<base>_count` samples back
/// into histograms keyed by base name.
std::map<std::string, HistView> collectHists(const std::vector<PromSample> &S) {
  std::map<std::string, HistView> Out;
  auto Suffix = [](const std::string &Name, const char *Tail,
                   std::string &Base) {
    size_t TL = std::strlen(Tail);
    if (Name.size() <= TL || Name.compare(Name.size() - TL, TL, Tail) != 0)
      return false;
    Base = Name.substr(0, Name.size() - TL);
    return true;
  };
  for (const PromSample &P : S) {
    std::string Base;
    if (Suffix(P.Name, "_bucket", Base)) {
      std::string Le = P.label("le");
      if (Le.empty())
        continue;
      double LeV = Le == "+Inf" ? HUGE_VAL : std::atof(Le.c_str());
      Out[Base].Cum.emplace_back(LeV, P.Value);
    } else if (Suffix(P.Name, "_sum", Base)) {
      Out[Base].Sum = P.Value;
    } else if (Suffix(P.Name, "_count", Base)) {
      Out[Base].Count = P.Value;
    }
  }
  for (auto &[Name, H] : Out)
    std::sort(H.Cum.begin(), H.Cum.end());
  return Out;
}

std::optional<double> scalar(const std::vector<PromSample> &S,
                             const char *Name) {
  for (const PromSample &P : S)
    if (P.Name == Name)
      return P.Value;
  return std::nullopt;
}

/// "spike_serve_latency_<cmd>_ns" -> <cmd>, if the name matches.
bool commandOfHist(const std::string &Base, const char *Prefix,
                   std::string &Cmd) {
  size_t PL = std::strlen(Prefix);
  const char *Tail = "_ns";
  if (Base.size() <= PL + 3 || Base.compare(0, PL, Prefix) != 0 ||
      Base.compare(Base.size() - 3, 3, Tail) != 0)
    return false;
  Cmd = Base.substr(PL, Base.size() - PL - 3);
  return true;
}

void renderHistTable(std::FILE *Out, const char *Title, const char *Prefix,
                     const std::map<std::string, HistView> &Hists,
                     uint64_t Top) {
  struct Row {
    std::string Cmd;
    const HistView *H;
  };
  std::vector<Row> Rows;
  for (const auto &[Base, H] : Hists) {
    std::string Cmd;
    if (commandOfHist(Base, Prefix, Cmd) && H.Count > 0)
      Rows.push_back({Cmd, &H});
  }
  // Rank by p99, ties broken by name so the table is deterministic.
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    double PA = A.H->percentile(99), PB = B.H->percentile(99);
    return PA != PB ? PA > PB : A.Cmd < B.Cmd;
  });
  if (Rows.size() > Top)
    Rows.resize(Top);
  std::fprintf(Out, "%s\n", Title);
  std::fprintf(Out, "  %-14s %8s %12s %12s %12s %12s\n", "command", "count",
               "mean_ns", "p50_ns", "p90_ns", "p99_ns");
  for (const Row &R : Rows)
    std::fprintf(Out, "  %-14s %8s %12s %12s %12s %12s\n", R.Cmd.c_str(),
                 ns(R.H->Count).c_str(), ns(R.H->mean()).c_str(),
                 ns(R.H->percentile(50)).c_str(),
                 ns(R.H->percentile(90)).c_str(),
                 ns(R.H->percentile(99)).c_str());
  if (Rows.empty())
    std::fprintf(Out, "  (no samples)\n");
}

void renderExposition(std::FILE *Out, const std::vector<PromSample> &Samples,
                      uint64_t Top) {
  std::map<std::string, HistView> Hists = collectHists(Samples);

  renderHistTable(Out, "top commands by p99 latency", "spike_serve_latency_",
                  Hists, Top);
  renderHistTable(Out, "top commands by p99 queue wait",
                  "spike_serve_queue_wait_", Hists, Top);

  // Hot routines by attributed solve time.
  struct Hot {
    std::string Routine;
    double Ns = 0, Pops = 0;
  };
  std::map<std::string, Hot> ByRoutine;
  for (const PromSample &P : Samples) {
    std::string R = P.label("routine");
    if (R.empty())
      continue;
    if (P.Name == "spike_hot_routine_ns") {
      ByRoutine[R].Routine = R;
      ByRoutine[R].Ns += P.Value;
    } else if (P.Name == "spike_hot_routine_pops") {
      ByRoutine[R].Routine = R;
      ByRoutine[R].Pops += P.Value;
    }
  }
  std::vector<Hot> Hots;
  for (const auto &[Name, H] : ByRoutine)
    Hots.push_back(H);
  std::sort(Hots.begin(), Hots.end(), [](const Hot &A, const Hot &B) {
    return A.Ns != B.Ns ? A.Ns > B.Ns : A.Routine < B.Routine;
  });
  if (Hots.size() > Top)
    Hots.resize(Top);
  std::fprintf(Out, "top routines by attributed ns\n");
  std::fprintf(Out, "  %-24s %14s %10s\n", "routine", "ns", "pops");
  for (const Hot &H : Hots)
    std::fprintf(Out, "  %-24s %14s %10s\n", H.Routine.c_str(),
                 ns(H.Ns).c_str(), ns(H.Pops).c_str());
  if (Hots.empty())
    std::fprintf(Out, "  (no attribution)\n");

  // Health rates over the reply totals.
  double Queries = scalar(Samples, "spike_serve_queries_total").value_or(0);
  double Loads = scalar(Samples, "spike_serve_loads_total").value_or(0);
  double Patches = scalar(Samples, "spike_serve_patches_total").value_or(0);
  double Full =
      scalar(Samples, "spike_serve_patch_full_solves_total").value_or(0);
  double Errors = scalar(Samples, "spike_serve_errors_total").value_or(0);
  double Proto =
      scalar(Samples, "spike_serve_protocol_errors_total").value_or(0);
  double Degraded =
      scalar(Samples, "spike_serve_degraded_replies_total").value_or(0);
  double Hits = scalar(Samples, "spike_serve_depgraph_hits_total").value_or(0);
  double Builds =
      scalar(Samples, "spike_serve_depgraph_builds_total").value_or(0);
  double Requests = Queries + Loads + Patches + Errors;
  auto Rate = [](double Num, double Den) {
    return Den > 0 ? 100.0 * Num / Den : 0.0;
  };
  std::fprintf(Out, "rates\n");
  std::fprintf(Out,
               "  requests %s  errors %s (%.1f%%)  protocol_errors %s  "
               "degraded %s (%.1f%%)\n",
               ns(Requests).c_str(), ns(Errors).c_str(), Rate(Errors, Requests),
               ns(Proto).c_str(), ns(Degraded).c_str(),
               Rate(Degraded, Requests));
  std::fprintf(Out,
               "  patches %s  full_solves %s (%.1f%%)  depgraph_hit %.1f%%\n",
               ns(Patches).c_str(), ns(Full).c_str(), Rate(Full, Patches),
               Rate(Hits, Hits + Builds));
}

//===----------------------------------------------------------------------===//
// Access-log tables
//===----------------------------------------------------------------------===//

struct LogStats {
  struct PerCmd {
    uint64_t Count = 0, Errors = 0, Slow = 0;
    uint64_t ExecNs = 0; // summed
  };
  std::map<std::string, PerCmd> ByCmd;
  struct SlowReq {
    uint64_t Seq = 0, ExecNs = 0;
    std::string Cmd;
  };
  std::vector<SlowReq> Slow;
  uint64_t Records = 0, ProtocolErrors = 0, Degraded = 0;
};

/// Parses one access-log record line into \p L; false on schema errors.
bool foldLogRecord(const JsonValue &V, LogStats &L, std::string *Error) {
  const JsonValue *Seq = V.find("seq");
  const JsonValue *Cmd = V.find("command");
  const JsonValue *Ok = V.find("ok");
  const JsonValue *Exec = V.find("exec_ns");
  const JsonValue *Queue = V.find("queue_ns");
  const JsonValue *Slow = V.find("slow");
  if (!Seq || !Seq->isNumber() || !Cmd || !Cmd->isString() || !Ok ||
      !Ok->isBool() || !Exec || !Exec->isNumber() || !Queue ||
      !Queue->isNumber() || !Slow || !Slow->isBool()) {
    if (Error)
      *Error = "record missing seq/command/ok/exec_ns/queue_ns/slow";
    return false;
  }
  ++L.Records;
  LogStats::PerCmd &P = L.ByCmd[Cmd->Str];
  ++P.Count;
  P.Errors += !Ok->B;
  P.Slow += Slow->B;
  P.ExecNs += uint64_t(Exec->Num);
  if (const JsonValue *PE = V.find("protocol_error"); PE && PE->isBool())
    L.ProtocolErrors += PE->B;
  if (const JsonValue *D = V.find("degraded"); D && D->isBool())
    L.Degraded += D->B;
  if (Slow->B)
    L.Slow.push_back(
        {uint64_t(Seq->Num), uint64_t(Exec->Num), Cmd->Str});
  return true;
}

void renderLog(std::FILE *Out, const LogStats &L, uint64_t Top) {
  std::fprintf(Out, "access log: %s records, %s protocol errors, "
                    "%s degraded\n",
               ns(double(L.Records)).c_str(),
               ns(double(L.ProtocolErrors)).c_str(),
               ns(double(L.Degraded)).c_str());
  struct Row {
    std::string Cmd;
    const LogStats::PerCmd *P;
  };
  std::vector<Row> Rows;
  for (const auto &[Cmd, P] : L.ByCmd)
    Rows.push_back({Cmd, &P});
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.P->ExecNs != B.P->ExecNs ? A.P->ExecNs > B.P->ExecNs
                                      : A.Cmd < B.Cmd;
  });
  if (Rows.size() > Top)
    Rows.resize(Top);
  std::fprintf(Out, "  %-14s %8s %8s %8s %14s\n", "command", "count", "errors",
               "slow", "exec_ns_total");
  for (const Row &R : Rows)
    std::fprintf(Out, "  %-14s %8llu %8llu %8llu %14llu\n", R.Cmd.c_str(),
                 (unsigned long long)R.P->Count,
                 (unsigned long long)R.P->Errors,
                 (unsigned long long)R.P->Slow,
                 (unsigned long long)R.P->ExecNs);
  std::vector<LogStats::SlowReq> Slow = L.Slow;
  std::sort(Slow.begin(), Slow.end(),
            [](const LogStats::SlowReq &A, const LogStats::SlowReq &B) {
              return A.ExecNs != B.ExecNs ? A.ExecNs > B.ExecNs
                                          : A.Seq < B.Seq;
            });
  if (Slow.size() > Top)
    Slow.resize(Top);
  std::fprintf(Out, "slowest requests\n");
  for (const LogStats::SlowReq &S : Slow)
    std::fprintf(Out, "  seq %llu  %-14s %12llu ns\n",
                 (unsigned long long)S.Seq, S.Cmd.c_str(),
                 (unsigned long long)S.ExecNs);
  if (Slow.empty())
    std::fprintf(Out, "  (none)\n");
}

//===----------------------------------------------------------------------===//
// Input detection and validation
//===----------------------------------------------------------------------===//

enum class InputKind { Exposition, ReplyStream, AccessLog };

InputKind detectInput(const std::string &Text) {
  size_t Eol = Text.find('\n');
  std::string First = Text.substr(0, Eol);
  if (First.find("spike-serve-access-log") != std::string::npos)
    return InputKind::AccessLog;
  if (!First.empty() && First[0] == '{') {
    // A reply stream line carries "cmd" and "seq"; an access log without
    // its header line still carries "seq" but spells the command
    // "command".  Fall back on exposition for anything unparsable.
    if (std::optional<JsonValue> V = telemetry::parseJson(First)) {
      if (V->isObject() && V->find("cmd"))
        return InputKind::ReplyStream;
      if (V->isObject() && V->find("seq"))
        return InputKind::AccessLog;
    }
  }
  return InputKind::Exposition;
}

/// Pulls the exposition text out of a reply stream: the last `metrics`
/// reply's "body".
std::optional<std::string> expositionOfReplies(const std::string &Text,
                                               std::string *Error) {
  std::optional<std::string> Body;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line =
        Text.substr(Pos, Eol == std::string::npos ? Eol : Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = telemetry::parseJson(Line);
    if (!V || !V->isObject()) {
      if (Error)
        *Error = "reply stream line is not a JSON object: " + Line;
      return std::nullopt;
    }
    if (V->stringOr("cmd", "") != "metrics")
      continue;
    const JsonValue *B = V->find("body");
    if (!B || !B->isString()) {
      if (Error)
        *Error = "metrics reply has no \"body\" string";
      return std::nullopt;
    }
    Body = B->Str;
  }
  if (!Body && Error)
    *Error = "no `metrics` reply found in the stream (run the session "
             "with a `metrics {}` line)";
  return Body;
}

/// Strict access-log walk; fills \p L and returns false on the first
/// malformed line.
bool foldAccessLog(const std::string &Text, LogStats &L, std::string *Error) {
  size_t Pos = 0;
  unsigned LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line =
        Text.substr(Pos, Eol == std::string::npos ? Eol : Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    std::string JsonErr;
    std::optional<JsonValue> V = telemetry::parseJson(Line, &JsonErr);
    if (!V || !V->isObject()) {
      if (Error)
        *Error = "line " + std::to_string(LineNo) +
                 ": not a JSON object: " + JsonErr;
      return false;
    }
    if (V->stringOr("schema", "") == "spike-serve-access-log") {
      if (SawHeader || LineNo != 1) {
        if (Error)
          *Error = "line " + std::to_string(LineNo) +
                   ": header must be the first line, once";
        return false;
      }
      SawHeader = true;
      continue;
    }
    std::string RecErr;
    if (!foldLogRecord(*V, L, &RecErr)) {
      if (Error)
        *Error = "line " + std::to_string(LineNo) + ": " + RecErr;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Socket scrape
//===----------------------------------------------------------------------===//

#ifdef SPIKE_TOP_POSIX
std::optional<std::string> scrapeSocket(const std::string &Path,
                                        std::string *Error) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof Addr.sun_path) {
    if (Error)
      *Error = "socket path too long: " + Path;
    ::close(Fd);
    return std::nullopt;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    if (Error)
      *Error = std::string("connect to ") + Path + ": " +
               std::strerror(errno);
    ::close(Fd);
    return std::nullopt;
  }
  const char *Req = "metrics {}\n";
  size_t Off = 0, Len = std::strlen(Req);
  while (Off < Len) {
    ssize_t N = ::write(Fd, Req + Off, Len - Off);
    if (N <= 0) {
      if (Error)
        *Error = std::string("write: ") + std::strerror(errno);
      ::close(Fd);
      return std::nullopt;
    }
    Off += size_t(N);
  }
  ::shutdown(Fd, SHUT_WR);
  std::string Reply;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof Buf)) > 0) {
    Reply.append(Buf, size_t(N));
    if (Reply.find('\n') != std::string::npos)
      break;
  }
  ::close(Fd);
  return Reply;
}
#else
std::optional<std::string> scrapeSocket(const std::string &, std::string *E) {
  if (E)
    *E = "unix-domain sockets are not supported on this platform";
  return std::nullopt;
}
#endif

int runTool(int Argc, char **Argv) {
  std::string SocketPath, PromOut;
  bool Once = false, Validate = false;
  uint64_t Top = 10, IntervalMs = 2000;
  for (int I = 1; I < Argc; ++I) {
    if (parseStringFlag(Argc, Argv, I, "--socket", SocketPath))
      ;
    else if (parseStringFlag(Argc, Argv, I, "--prom-out", PromOut))
      ;
    else if (parseUnsignedFlag(Argc, Argv, I, "--top", Top))
      ;
    else if (parseUnsignedFlag(Argc, Argv, I, "--interval", IntervalMs))
      ;
    else if (std::strcmp(Argv[I], "--once") == 0)
      Once = true;
    else if (std::strcmp(Argv[I], "--validate") == 0)
      Validate = true;
    else
      return usage(Argv[0]);
  }
  if (Top == 0)
    Top = 1;

  // One round: obtain input, validate/render, return exit status.
  auto Round = [&]() -> int {
    std::string Text, Error;
    InputKind Kind;
    if (!SocketPath.empty()) {
      std::optional<std::string> Reply = scrapeSocket(SocketPath, &Error);
      if (!Reply) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      Text = *Reply;
      Kind = InputKind::ReplyStream;
    } else {
      Text = readAll(stdin);
      Kind = detectInput(Text);
    }

    if (Kind == InputKind::AccessLog) {
      LogStats L;
      if (!foldAccessLog(Text, L, &Error)) {
        std::fprintf(stderr, "error: access log invalid: %s\n", Error.c_str());
        return 1;
      }
      if (Validate) {
        std::printf("access log OK: %llu record(s)\n",
                    (unsigned long long)L.Records);
        return 0;
      }
      renderLog(stdout, L, Top);
      return 0;
    }

    std::string Exposition;
    if (Kind == InputKind::ReplyStream) {
      std::optional<std::string> Body = expositionOfReplies(Text, &Error);
      if (!Body) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      Exposition = *Body;
    } else {
      Exposition = Text;
    }

    if (!PromOut.empty()) {
      std::FILE *F = std::fopen(PromOut.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "error: cannot write '%s'\n", PromOut.c_str());
        return 1;
      }
      std::fwrite(Exposition.data(), 1, Exposition.size(), F);
      std::fclose(F);
    }

    std::optional<std::vector<PromSample>> Samples =
        telemetry::parseExposition(Exposition, &Error);
    if (!Samples) {
      std::fprintf(stderr, "error: exposition invalid: %s\n", Error.c_str());
      return 1;
    }
    if (Validate) {
      std::printf("exposition OK: %llu sample(s)\n",
                  (unsigned long long)Samples->size());
      return 0;
    }
    renderExposition(stdout, *Samples, Top);
    return 0;
  };

  if (SocketPath.empty() || Once || Validate)
    return Round();

#ifdef SPIKE_TOP_POSIX
  // Live mode: poll until the server goes away.
  for (;;) {
    std::printf("---\n");
    if (int Rc = Round())
      return Rc;
    std::fflush(stdout);
    ::usleep(useconds_t(IntervalMs * 1000));
  }
#else
  return Round();
#endif
}

} // namespace

int main(int Argc, char **Argv) {
  toolopts::handleVersion(Argc, Argv, "spike-top");
  return runTool(Argc, Argv);
}
