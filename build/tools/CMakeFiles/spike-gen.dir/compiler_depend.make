# Empty compiler generated dependencies file for spike-gen.
# This may be replaced when dependencies are built.
