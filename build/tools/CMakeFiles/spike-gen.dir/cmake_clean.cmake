file(REMOVE_RECURSE
  "CMakeFiles/spike-gen.dir/spike-gen.cpp.o"
  "CMakeFiles/spike-gen.dir/spike-gen.cpp.o.d"
  "spike-gen"
  "spike-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
