# Empty compiler generated dependencies file for spike-as.
# This may be replaced when dependencies are built.
