file(REMOVE_RECURSE
  "CMakeFiles/spike-as.dir/spike-as.cpp.o"
  "CMakeFiles/spike-as.dir/spike-as.cpp.o.d"
  "spike-as"
  "spike-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
