# Empty compiler generated dependencies file for spike-analyze.
# This may be replaced when dependencies are built.
