file(REMOVE_RECURSE
  "CMakeFiles/spike-analyze.dir/spike-analyze.cpp.o"
  "CMakeFiles/spike-analyze.dir/spike-analyze.cpp.o.d"
  "spike-analyze"
  "spike-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
