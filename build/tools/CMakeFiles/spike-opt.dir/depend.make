# Empty dependencies file for spike-opt.
# This may be replaced when dependencies are built.
