file(REMOVE_RECURSE
  "CMakeFiles/spike-opt.dir/spike-opt.cpp.o"
  "CMakeFiles/spike-opt.dir/spike-opt.cpp.o.d"
  "spike-opt"
  "spike-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
