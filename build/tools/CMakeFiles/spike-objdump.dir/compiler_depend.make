# Empty compiler generated dependencies file for spike-objdump.
# This may be replaced when dependencies are built.
