file(REMOVE_RECURSE
  "CMakeFiles/spike-objdump.dir/spike-objdump.cpp.o"
  "CMakeFiles/spike-objdump.dir/spike-objdump.cpp.o.d"
  "spike-objdump"
  "spike-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
