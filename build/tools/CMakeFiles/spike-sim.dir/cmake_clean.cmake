file(REMOVE_RECURSE
  "CMakeFiles/spike-sim.dir/spike-sim.cpp.o"
  "CMakeFiles/spike-sim.dir/spike-sim.cpp.o.d"
  "spike-sim"
  "spike-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
