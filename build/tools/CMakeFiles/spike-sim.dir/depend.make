# Empty dependencies file for spike-sim.
# This may be replaced when dependencies are built.
