
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyzer_test.cpp" "tests/CMakeFiles/spike_tests.dir/analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/analyzer_test.cpp.o.d"
  "/root/repo/tests/annotations_test.cpp" "tests/CMakeFiles/spike_tests.dir/annotations_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/annotations_test.cpp.o.d"
  "/root/repo/tests/assembler_test.cpp" "tests/CMakeFiles/spike_tests.dir/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/assembler_test.cpp.o.d"
  "/root/repo/tests/binary_test.cpp" "tests/CMakeFiles/spike_tests.dir/binary_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/binary_test.cpp.o.d"
  "/root/repo/tests/callgraph_test.cpp" "tests/CMakeFiles/spike_tests.dir/callgraph_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/callgraph_test.cpp.o.d"
  "/root/repo/tests/cfg_test.cpp" "tests/CMakeFiles/spike_tests.dir/cfg_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/cfg_test.cpp.o.d"
  "/root/repo/tests/dataflow_test.cpp" "tests/CMakeFiles/spike_tests.dir/dataflow_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/dataflow_test.cpp.o.d"
  "/root/repo/tests/dot_test.cpp" "tests/CMakeFiles/spike_tests.dir/dot_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/dot_test.cpp.o.d"
  "/root/repo/tests/interproc_test.cpp" "tests/CMakeFiles/spike_tests.dir/interproc_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/interproc_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/spike_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/spike_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/spike_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/psg_paper_test.cpp" "tests/CMakeFiles/spike_tests.dir/psg_paper_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/psg_paper_test.cpp.o.d"
  "/root/repo/tests/psg_test.cpp" "tests/CMakeFiles/spike_tests.dir/psg_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/psg_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/spike_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/spike_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/spike_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/spike_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/tools_test.cpp" "tests/CMakeFiles/spike_tests.dir/tools_test.cpp.o" "gcc" "tests/CMakeFiles/spike_tests.dir/tools_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/spike_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/interproc/CMakeFiles/spike_interproc.dir/DependInfo.cmake"
  "/root/repo/build/src/psg/CMakeFiles/spike_psg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spike_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spike_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/spike_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/spike_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/spike_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
