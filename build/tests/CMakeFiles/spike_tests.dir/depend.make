# Empty dependencies file for spike_tests.
# This may be replaced when dependencies are built.
