
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/spike_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/interproc/CMakeFiles/spike_interproc.dir/DependInfo.cmake"
  "/root/repo/build/src/psg/CMakeFiles/spike_psg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spike_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spike_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/spike_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/spike_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/spike_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
