file(REMOVE_RECURSE
  "CMakeFiles/optimize_binary.dir/optimize_binary.cpp.o"
  "CMakeFiles/optimize_binary.dir/optimize_binary.cpp.o.d"
  "optimize_binary"
  "optimize_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
