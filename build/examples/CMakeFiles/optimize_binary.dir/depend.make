# Empty dependencies file for optimize_binary.
# This may be replaced when dependencies are built.
