file(REMOVE_RECURSE
  "CMakeFiles/annotate_indirect.dir/annotate_indirect.cpp.o"
  "CMakeFiles/annotate_indirect.dir/annotate_indirect.cpp.o.d"
  "annotate_indirect"
  "annotate_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
