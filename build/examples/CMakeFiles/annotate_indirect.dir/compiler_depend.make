# Empty compiler generated dependencies file for annotate_indirect.
# This may be replaced when dependencies are built.
