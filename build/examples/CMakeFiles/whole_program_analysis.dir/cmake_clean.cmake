file(REMOVE_RECURSE
  "CMakeFiles/whole_program_analysis.dir/whole_program_analysis.cpp.o"
  "CMakeFiles/whole_program_analysis.dir/whole_program_analysis.cpp.o.d"
  "whole_program_analysis"
  "whole_program_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_program_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
