# Empty dependencies file for whole_program_analysis.
# This may be replaced when dependencies are built.
