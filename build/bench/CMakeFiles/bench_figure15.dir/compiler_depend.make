# Empty compiler generated dependencies file for bench_figure15.
# This may be replaced when dependencies are built.
