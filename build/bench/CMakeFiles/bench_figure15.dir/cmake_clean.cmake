file(REMOVE_RECURSE
  "CMakeFiles/bench_figure15.dir/bench_figure15.cpp.o"
  "CMakeFiles/bench_figure15.dir/bench_figure15.cpp.o.d"
  "bench_figure15"
  "bench_figure15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
