# Empty dependencies file for bench_figure13.
# This may be replaced when dependencies are built.
