file(REMOVE_RECURSE
  "CMakeFiles/bench_figure13.dir/bench_figure13.cpp.o"
  "CMakeFiles/bench_figure13.dir/bench_figure13.cpp.o.d"
  "bench_figure13"
  "bench_figure13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
