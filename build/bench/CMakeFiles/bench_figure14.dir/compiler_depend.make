# Empty compiler generated dependencies file for bench_figure14.
# This may be replaced when dependencies are built.
