file(REMOVE_RECURSE
  "CMakeFiles/bench_figure14.dir/bench_figure14.cpp.o"
  "CMakeFiles/bench_figure14.dir/bench_figure14.cpp.o.d"
  "bench_figure14"
  "bench_figure14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
