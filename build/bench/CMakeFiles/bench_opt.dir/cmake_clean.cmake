file(REMOVE_RECURSE
  "CMakeFiles/bench_opt.dir/bench_opt.cpp.o"
  "CMakeFiles/bench_opt.dir/bench_opt.cpp.o.d"
  "bench_opt"
  "bench_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
