# Empty dependencies file for spike_psg.
# This may be replaced when dependencies are built.
