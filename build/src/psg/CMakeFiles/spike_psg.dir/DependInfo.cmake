
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psg/Analyzer.cpp" "src/psg/CMakeFiles/spike_psg.dir/Analyzer.cpp.o" "gcc" "src/psg/CMakeFiles/spike_psg.dir/Analyzer.cpp.o.d"
  "/root/repo/src/psg/DotExport.cpp" "src/psg/CMakeFiles/spike_psg.dir/DotExport.cpp.o" "gcc" "src/psg/CMakeFiles/spike_psg.dir/DotExport.cpp.o.d"
  "/root/repo/src/psg/PsgBuilder.cpp" "src/psg/CMakeFiles/spike_psg.dir/PsgBuilder.cpp.o" "gcc" "src/psg/CMakeFiles/spike_psg.dir/PsgBuilder.cpp.o.d"
  "/root/repo/src/psg/PsgSolver.cpp" "src/psg/CMakeFiles/spike_psg.dir/PsgSolver.cpp.o" "gcc" "src/psg/CMakeFiles/spike_psg.dir/PsgSolver.cpp.o.d"
  "/root/repo/src/psg/Summaries.cpp" "src/psg/CMakeFiles/spike_psg.dir/Summaries.cpp.o" "gcc" "src/psg/CMakeFiles/spike_psg.dir/Summaries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/spike_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/spike_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/spike_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
