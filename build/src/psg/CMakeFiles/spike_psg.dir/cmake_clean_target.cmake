file(REMOVE_RECURSE
  "libspike_psg.a"
)
