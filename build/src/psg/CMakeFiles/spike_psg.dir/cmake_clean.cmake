file(REMOVE_RECURSE
  "CMakeFiles/spike_psg.dir/Analyzer.cpp.o"
  "CMakeFiles/spike_psg.dir/Analyzer.cpp.o.d"
  "CMakeFiles/spike_psg.dir/DotExport.cpp.o"
  "CMakeFiles/spike_psg.dir/DotExport.cpp.o.d"
  "CMakeFiles/spike_psg.dir/PsgBuilder.cpp.o"
  "CMakeFiles/spike_psg.dir/PsgBuilder.cpp.o.d"
  "CMakeFiles/spike_psg.dir/PsgSolver.cpp.o"
  "CMakeFiles/spike_psg.dir/PsgSolver.cpp.o.d"
  "CMakeFiles/spike_psg.dir/Summaries.cpp.o"
  "CMakeFiles/spike_psg.dir/Summaries.cpp.o.d"
  "libspike_psg.a"
  "libspike_psg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_psg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
