file(REMOVE_RECURSE
  "CMakeFiles/spike_opt.dir/AnnotationDeriver.cpp.o"
  "CMakeFiles/spike_opt.dir/AnnotationDeriver.cpp.o.d"
  "CMakeFiles/spike_opt.dir/DeadDefElim.cpp.o"
  "CMakeFiles/spike_opt.dir/DeadDefElim.cpp.o.d"
  "CMakeFiles/spike_opt.dir/Pipeline.cpp.o"
  "CMakeFiles/spike_opt.dir/Pipeline.cpp.o.d"
  "CMakeFiles/spike_opt.dir/SaveRestoreElim.cpp.o"
  "CMakeFiles/spike_opt.dir/SaveRestoreElim.cpp.o.d"
  "CMakeFiles/spike_opt.dir/SpillRemoval.cpp.o"
  "CMakeFiles/spike_opt.dir/SpillRemoval.cpp.o.d"
  "CMakeFiles/spike_opt.dir/UnreachableElim.cpp.o"
  "CMakeFiles/spike_opt.dir/UnreachableElim.cpp.o.d"
  "libspike_opt.a"
  "libspike_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
