file(REMOVE_RECURSE
  "libspike_opt.a"
)
