
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/AnnotationDeriver.cpp" "src/opt/CMakeFiles/spike_opt.dir/AnnotationDeriver.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/AnnotationDeriver.cpp.o.d"
  "/root/repo/src/opt/DeadDefElim.cpp" "src/opt/CMakeFiles/spike_opt.dir/DeadDefElim.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/DeadDefElim.cpp.o.d"
  "/root/repo/src/opt/Pipeline.cpp" "src/opt/CMakeFiles/spike_opt.dir/Pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/Pipeline.cpp.o.d"
  "/root/repo/src/opt/SaveRestoreElim.cpp" "src/opt/CMakeFiles/spike_opt.dir/SaveRestoreElim.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/SaveRestoreElim.cpp.o.d"
  "/root/repo/src/opt/SpillRemoval.cpp" "src/opt/CMakeFiles/spike_opt.dir/SpillRemoval.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/SpillRemoval.cpp.o.d"
  "/root/repo/src/opt/UnreachableElim.cpp" "src/opt/CMakeFiles/spike_opt.dir/UnreachableElim.cpp.o" "gcc" "src/opt/CMakeFiles/spike_opt.dir/UnreachableElim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psg/CMakeFiles/spike_psg.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/spike_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/spike_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/spike_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
