# Empty dependencies file for spike_opt.
# This may be replaced when dependencies are built.
