# Empty compiler generated dependencies file for spike_isa.
# This may be replaced when dependencies are built.
