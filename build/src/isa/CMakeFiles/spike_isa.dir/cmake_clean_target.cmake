file(REMOVE_RECURSE
  "libspike_isa.a"
)
