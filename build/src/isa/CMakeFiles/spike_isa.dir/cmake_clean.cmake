file(REMOVE_RECURSE
  "CMakeFiles/spike_isa.dir/Encoding.cpp.o"
  "CMakeFiles/spike_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/spike_isa.dir/Instruction.cpp.o"
  "CMakeFiles/spike_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/spike_isa.dir/Registers.cpp.o"
  "CMakeFiles/spike_isa.dir/Registers.cpp.o.d"
  "libspike_isa.a"
  "libspike_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
