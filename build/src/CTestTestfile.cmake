# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("binary")
subdirs("cfg")
subdirs("dataflow")
subdirs("psg")
subdirs("interproc")
subdirs("opt")
subdirs("sim")
subdirs("synth")
