# Empty dependencies file for spike_binary.
# This may be replaced when dependencies are built.
