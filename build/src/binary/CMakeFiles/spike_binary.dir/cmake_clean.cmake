file(REMOVE_RECURSE
  "CMakeFiles/spike_binary.dir/Assembler.cpp.o"
  "CMakeFiles/spike_binary.dir/Assembler.cpp.o.d"
  "CMakeFiles/spike_binary.dir/Image.cpp.o"
  "CMakeFiles/spike_binary.dir/Image.cpp.o.d"
  "CMakeFiles/spike_binary.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/spike_binary.dir/ProgramBuilder.cpp.o.d"
  "libspike_binary.a"
  "libspike_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
