file(REMOVE_RECURSE
  "libspike_binary.a"
)
