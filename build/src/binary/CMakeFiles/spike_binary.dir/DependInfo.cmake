
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binary/Assembler.cpp" "src/binary/CMakeFiles/spike_binary.dir/Assembler.cpp.o" "gcc" "src/binary/CMakeFiles/spike_binary.dir/Assembler.cpp.o.d"
  "/root/repo/src/binary/Image.cpp" "src/binary/CMakeFiles/spike_binary.dir/Image.cpp.o" "gcc" "src/binary/CMakeFiles/spike_binary.dir/Image.cpp.o.d"
  "/root/repo/src/binary/ProgramBuilder.cpp" "src/binary/CMakeFiles/spike_binary.dir/ProgramBuilder.cpp.o" "gcc" "src/binary/CMakeFiles/spike_binary.dir/ProgramBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
