file(REMOVE_RECURSE
  "libspike_sim.a"
)
