# Empty dependencies file for spike_sim.
# This may be replaced when dependencies are built.
