file(REMOVE_RECURSE
  "CMakeFiles/spike_sim.dir/Simulator.cpp.o"
  "CMakeFiles/spike_sim.dir/Simulator.cpp.o.d"
  "libspike_sim.a"
  "libspike_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
