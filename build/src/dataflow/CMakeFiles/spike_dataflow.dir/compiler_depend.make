# Empty compiler generated dependencies file for spike_dataflow.
# This may be replaced when dependencies are built.
