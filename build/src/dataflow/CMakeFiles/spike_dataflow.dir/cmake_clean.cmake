file(REMOVE_RECURSE
  "CMakeFiles/spike_dataflow.dir/Liveness.cpp.o"
  "CMakeFiles/spike_dataflow.dir/Liveness.cpp.o.d"
  "libspike_dataflow.a"
  "libspike_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
