file(REMOVE_RECURSE
  "libspike_dataflow.a"
)
