# Empty compiler generated dependencies file for spike_cfg.
# This may be replaced when dependencies are built.
