file(REMOVE_RECURSE
  "CMakeFiles/spike_cfg.dir/CallGraph.cpp.o"
  "CMakeFiles/spike_cfg.dir/CallGraph.cpp.o.d"
  "CMakeFiles/spike_cfg.dir/CfgBuilder.cpp.o"
  "CMakeFiles/spike_cfg.dir/CfgBuilder.cpp.o.d"
  "CMakeFiles/spike_cfg.dir/SaveRestore.cpp.o"
  "CMakeFiles/spike_cfg.dir/SaveRestore.cpp.o.d"
  "libspike_cfg.a"
  "libspike_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
