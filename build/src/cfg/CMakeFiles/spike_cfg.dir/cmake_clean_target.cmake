file(REMOVE_RECURSE
  "libspike_cfg.a"
)
