file(REMOVE_RECURSE
  "libspike_interproc.a"
)
