# Empty dependencies file for spike_interproc.
# This may be replaced when dependencies are built.
