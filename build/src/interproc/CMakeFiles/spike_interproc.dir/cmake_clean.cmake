file(REMOVE_RECURSE
  "CMakeFiles/spike_interproc.dir/CfgTwoPhase.cpp.o"
  "CMakeFiles/spike_interproc.dir/CfgTwoPhase.cpp.o.d"
  "CMakeFiles/spike_interproc.dir/Supergraph.cpp.o"
  "CMakeFiles/spike_interproc.dir/Supergraph.cpp.o.d"
  "libspike_interproc.a"
  "libspike_interproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_interproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
