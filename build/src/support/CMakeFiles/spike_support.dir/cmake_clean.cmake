file(REMOVE_RECURSE
  "CMakeFiles/spike_support.dir/RegSet.cpp.o"
  "CMakeFiles/spike_support.dir/RegSet.cpp.o.d"
  "libspike_support.a"
  "libspike_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
