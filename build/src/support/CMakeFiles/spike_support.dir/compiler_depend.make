# Empty compiler generated dependencies file for spike_support.
# This may be replaced when dependencies are built.
