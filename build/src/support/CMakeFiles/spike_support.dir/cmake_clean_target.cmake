file(REMOVE_RECURSE
  "libspike_support.a"
)
