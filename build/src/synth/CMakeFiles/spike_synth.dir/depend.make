# Empty dependencies file for spike_synth.
# This may be replaced when dependencies are built.
