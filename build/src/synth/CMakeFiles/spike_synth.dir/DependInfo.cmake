
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/CfgGenerator.cpp" "src/synth/CMakeFiles/spike_synth.dir/CfgGenerator.cpp.o" "gcc" "src/synth/CMakeFiles/spike_synth.dir/CfgGenerator.cpp.o.d"
  "/root/repo/src/synth/ExecGenerator.cpp" "src/synth/CMakeFiles/spike_synth.dir/ExecGenerator.cpp.o" "gcc" "src/synth/CMakeFiles/spike_synth.dir/ExecGenerator.cpp.o.d"
  "/root/repo/src/synth/Profiles.cpp" "src/synth/CMakeFiles/spike_synth.dir/Profiles.cpp.o" "gcc" "src/synth/CMakeFiles/spike_synth.dir/Profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binary/CMakeFiles/spike_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/spike_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spike_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
