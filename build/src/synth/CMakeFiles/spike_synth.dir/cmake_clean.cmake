file(REMOVE_RECURSE
  "CMakeFiles/spike_synth.dir/CfgGenerator.cpp.o"
  "CMakeFiles/spike_synth.dir/CfgGenerator.cpp.o.d"
  "CMakeFiles/spike_synth.dir/ExecGenerator.cpp.o"
  "CMakeFiles/spike_synth.dir/ExecGenerator.cpp.o.d"
  "CMakeFiles/spike_synth.dir/Profiles.cpp.o"
  "CMakeFiles/spike_synth.dir/Profiles.cpp.o.d"
  "libspike_synth.a"
  "libspike_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
