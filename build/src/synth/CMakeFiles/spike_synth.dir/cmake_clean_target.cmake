file(REMOVE_RECURSE
  "libspike_synth.a"
)
